package core

import (
	"galois/internal/cachesim"
	"galois/internal/obs"
	"galois/internal/para"
)

// Sched selects the scheduler. The paper's "on-demand" property is exactly
// this switch: the same program text runs under either value.
type Sched int

const (
	// NonDeterministic is the speculative scheduler of Figure 1b.
	NonDeterministic Sched = iota
	// Deterministic is the DIG scheduler of Figure 2.
	Deterministic
)

// String implements fmt.Stringer.
func (s Sched) String() string {
	switch s {
	case NonDeterministic:
		return "nondet"
	case Deterministic:
		return "det"
	default:
		return "unknown"
	}
}

// Options configures a ForEach execution. The zero value is not meaningful;
// use Defaults and apply functional options from the galois package.
type Options struct {
	// Sched selects the scheduler.
	Sched Sched
	// Threads is the number of worker goroutines.
	Threads int

	// Continuation enables the continuation optimization of §3.3 for the
	// deterministic scheduler: tasks suspend at the failsafe point during
	// inspect and resume at commit instead of re-executing from scratch.
	// When disabled, the baseline scheduler of §3.2 re-executes each
	// selected task in validate mode.
	Continuation bool

	// LocalityInterleave enables the §3.3 round-placement optimization:
	// tasks adjacent in iteration order are dealt into different rounds.
	LocalityInterleave bool

	// PreassignedIDs declares that every dynamically created task carries
	// an explicit priority via Ctx.PushWithID, letting the scheduler skip
	// the (id(parent), k) sort of §3.2.
	PreassignedIDs bool

	// WindowInit is the initial window size for a generation of n tasks;
	// 0 means the default policy max(WindowMin, n/windowInitDivisor).
	WindowInit int
	// WindowMin is the window floor. It is a constant of the policy, not
	// a machine parameter: the window sequence is a pure function of
	// commit counts, so it is identical on every machine (portability).
	WindowMin int
	// WindowTarget is the commit-ratio target of the adaptive policy.
	WindowTarget float64

	// FIFO selects an approximately-FIFO worklist for the
	// non-deterministic scheduler instead of the default chunked-LIFO
	// with stealing. A scheduling hint in the Galois sense: it changes
	// performance (level-structured algorithms such as BFS need it to
	// avoid pathological traversal orders) but not correctness. The DIG
	// scheduler ignores it.
	FIFO bool

	// Priority, if non-nil, selects an ordered-by-integer-metric (OBIM)
	// worklist for the non-deterministic scheduler. It must be a
	// func(T) int for the loop's item type T (enforced at run time);
	// lower values drain first, best-effort. Takes precedence over FIFO;
	// ignored by the DIG scheduler. A performance hint only.
	Priority any
	// PriorityLevels is the number of OBIM buckets (default 64);
	// priorities clamp into [0, PriorityLevels).
	PriorityLevels int

	// SerialCoordinator forces the deterministic scheduler's
	// pre-parallel-coordination round pipeline: serial gather and
	// compaction on worker 0 between dedicated barriers, and serial
	// generation formation (fill, interleave, id assignment). Output is
	// byte-identical to the default parallel coordinator — the flag exists
	// as the differential-testing oracle for that claim, not as a tuning
	// knob.
	SerialCoordinator bool

	// Trace enables per-round statistics samples.
	Trace bool

	// Sink, if non-nil, receives scheduler trace events (internal/obs).
	// Tracing is non-perturbing: structural events are emitted only from
	// serial sections of the schedulers, so the committed output and the
	// event sequence of a deterministic run are unchanged by attaching a
	// sink. If the sink is an *obs.Trace, it must be sized for at least
	// Threads workers (checked at loop start).
	Sink obs.Sink
	// Metrics, if non-nil, receives counters and histograms describing the
	// run. Must be sized for at least Threads workers.
	Metrics *obs.Registry

	// Profile, if non-nil, records abstract-location accesses for the
	// locality study of §5.4 (Figures 11 and 12).
	Profile *cachesim.Tracer

	// Engine, if non-nil, supplies retained run state (worker pool,
	// barriers, arenas, contexts, scratch) that the run reuses instead of
	// allocating fresh. Reuse does not change committed output or the
	// event sequence. See NewEngine.
	Engine *Engine
}

// Defaults returns the default options: non-deterministic scheduling on all
// available threads with all §3.3 optimizations enabled.
func Defaults() Options {
	return Options{
		Sched:              NonDeterministic,
		Threads:            para.DefaultThreads(),
		Continuation:       true,
		LocalityInterleave: true,
		WindowMin:          defaultWindowMin,
		WindowTarget:       defaultWindowTarget,
	}
}
