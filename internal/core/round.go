package core

import (
	"sync/atomic"

	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
)

// roundExecutor runs one generation to completion: it owns the round state
// (the window of tasks under attempt, the pending remainder), the chunked
// distribution of inspect and execute work across workers, and the phase
// loop each worker runs between barriers — the inspect / selectAndExec
// structure of Figure 2. Worker 0 doubles as the round coordinator; the
// serial gather-and-adapt step between barriers is delegated to the
// commitCollector.
//
// All non-atomic fields are written only in serial sections (before the
// workers fork, or inside worker 0's coordinator block between barriers).
type roundExecutor[T any] struct {
	opt  Options
	body func(*Ctx[T], T)
	ctxs []*Ctx[T]
	col  *stats.Collector
	met  *coreMetrics
	sink obs.Sink

	nthreads int
	genIdx   int32
	round    int32
	done     bool

	// next is the generation's pending tasks in deterministic order; cur is
	// the current round's window prefix (capacity-capped so no append can
	// spill into rest), rest the remainder.
	next []*detTask[T]
	w    int
	cur  []*detTask[T]
	rest []*detTask[T]

	// insCtr/exeCtr distribute cur in chunks during the parallel phases.
	insCtr atomic.Int64
	exeCtr atomic.Int64
	chunk  int64

	win windowPolicy
	cc  *commitCollector[T]
}

// setupRound forms the next round from the pending tasks, or marks the
// generation done. Serial (pre-fork or coordinator).
func (r *roundExecutor[T]) setupRound() {
	if len(r.next) == 0 {
		r.done = true
		return
	}
	w := r.win.next(len(r.next))
	r.w = w
	r.cur, r.rest = r.next[:w:w], r.next[w:]
	r.round++
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundStart, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(w), int64(len(r.rest))}})
	chunk := int64(w / (r.nthreads * 8))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	r.chunk = chunk
	r.insCtr.Store(0)
	r.exeCtr.Store(0)
}

// inspectPhase is one worker's share of Phase 1 (Figure 2 line 14): claim
// chunks of the window and run each task through its failsafe point in
// inspect mode.
func (r *roundExecutor[T]) inspectPhase(ctx *Ctx[T], tid int) {
	for {
		start := r.insCtr.Add(r.chunk) - r.chunk
		if start >= int64(len(r.cur)) {
			return
		}
		end := min(start+r.chunk, int64(len(r.cur)))
		for _, t := range r.cur[start:end] {
			inspectTask(ctx, t, r.body, tid, r.opt.Continuation)
		}
	}
}

// execPhase is one worker's share of Phase 2 (Figure 2 line 19): claim
// chunks and commit or fail each task of the window.
func (r *roundExecutor[T]) execPhase(ctx *Ctx[T], tid int) {
	for {
		start := r.exeCtr.Add(r.chunk) - r.chunk
		if start >= int64(len(r.cur)) {
			return
		}
		end := min(start+r.chunk, int64(len(r.cur)))
		for _, t := range r.cur[start:end] {
			execTask(ctx, t, r.body, tid, r.opt.Continuation)
		}
	}
}

// run executes the generation on the engine's worker pool and leaves the
// produced children in the commit collector. Workers are persistent across
// rounds and synchronize with the engine's barrier, mirroring the barrier
// structure of Figure 2.
func (r *roundExecutor[T]) run(pool *para.Pool, bar *para.Barrier) {
	r.round = -1
	r.done = false
	r.setupRound()
	if r.done {
		return
	}
	pool.Run(r.nthreads, func(tid int) {
		ctx := r.ctxs[tid]
		for {
			if r.done {
				return
			}
			r.inspectPhase(ctx, tid)
			bar.Wait()
			r.execPhase(ctx, tid)
			bar.Wait()
			// Coordination: gather results, adapt the window, form the
			// next round (Figure 2 lines 9-12). Worker 0 runs this
			// serially between barriers.
			if tid == 0 {
				r.cc.gather(r)
				r.setupRound()
			}
			bar.Wait()
		}
	})
}
