package core

import (
	"sync/atomic"

	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
)

// parGatherMin is the smallest window gathered via per-chunk counts and an
// exclusive scan (commitCollector.scanCounts/place) instead of worker 0's
// serial walk. Below it the window fits in a few cache lines and the serial
// walk is cheaper than the extra barrier the parallel placement needs. A
// policy constant, not a machine parameter: it selects between two
// pipelines that produce byte-identical output.
const parGatherMin = 256

// roundExecutor runs the DIG generation/round loop of Figure 2 inside one
// persistent worker region: generation formation, the chunked inspect and
// execute phases, and the end-of-round coordination. It is retained by the
// engine per item type and reset per run, so driving it allocates nothing
// in the steady state.
//
// Coordination is fused into the barriers: the serial end-of-round step
// (gather or placement bookkeeping, window adaptation, next-round setup)
// runs as a para.Barrier.WaitDo callback — executed by the last worker to
// arrive, while every other worker is parked inside the same barrier — so a
// round costs two barrier crossings instead of the three a dedicated
// worker-0 coordination block costs. Rounds too small to parallelize run
// entirely on worker 0 between single barriers (serialRound), and large
// rounds distribute the gather itself (gatherPar).
//
// All non-atomic fields are written only in serial sections: before the
// workers fork, inside a WaitDo callback, or on worker 0 during a serial
// round. The callbacks are pure functions of that shared state, so which
// worker happens to run them cannot reach committed output; their events
// are emitted under tid 0, whose buffer no other thread touches while the
// callback holds the barrier.
type roundExecutor[T any] struct {
	st   *engState[T]
	opt  Options
	body func(*Ctx[T], T)
	ctxs []*Ctx[T]
	col  *stats.Collector
	met  *coreMetrics
	sink obs.Sink
	bar  *para.Barrier

	nthreads int
	genIdx   int32
	round    int32
	done     bool // current generation exhausted
	runDone  bool // no next generation: workers exit

	// gen is the live generation; formItems/formChildren (exactly one
	// non-nil) and formN describe the generation about to be formed;
	// buckets is its locality-interleave bucket count (<= 1: identity).
	gen          generation[T]
	formItems    []T
	formChildren []child[T]
	formN        int
	buckets      int

	// next is the generation's pending tasks in deterministic order; cur is
	// the current round's window prefix (capacity-capped so no append can
	// spill into rest), rest the remainder.
	next []*detTask[T]
	w    int
	cur  []*detTask[T]
	rest []*detTask[T]

	// insCtr/exeCtr/plcCtr distribute cur in chunks during the parallel
	// phases (inspect, execute, placement).
	insCtr atomic.Int64
	exeCtr atomic.Int64
	plcCtr atomic.Int64
	chunk  int64

	// serialRound: this round runs entirely on worker 0 (w <= nthreads —
	// fewer tasks than workers, so forking costs more than it buys).
	// gatherPar: this round's gather runs via per-chunk counts + scan.
	// Both are pure functions of (w, nthreads, opt), never of the machine,
	// so the pipeline choice is reproducible.
	serialRound bool
	gatherPar   bool

	// Parallel-gather round state, written by the scan callback and read
	// by all placers: failed-task count and the produced buffer's base
	// offset for this round's children.
	nf        int
	childBase int

	win windowPolicy
	cc  *commitCollector[T]

	// Phase timing (observational). ts0/ts1/ts2 mark round start, inspect
	// end, execute end; each is written in a serial section.
	timed         bool
	ts0, ts1, ts2 int64

	// Pre-built callbacks for the barrier fusion and the pool, so the hot
	// loop never constructs a closure (a method value passed to WaitDo
	// would allocate on every round).
	workerFn   func(int)
	startGenFn func()
	stampFn    func()
	scanFn     func()
	coordFn    func()
}

// newRoundExecutor returns an executor bound to its engine state, with the
// reusable callbacks built once.
func newRoundExecutor[T any](st *engState[T]) *roundExecutor[T] {
	r := &roundExecutor[T]{st: st}
	r.workerFn = r.workerLoop
	r.startGenFn = r.startGeneration
	r.stampFn = func() {
		if r.timed {
			r.ts1 = obs.Nanotime()
		}
	}
	r.scanFn = func() {
		if r.timed {
			r.ts2 = obs.Nanotime()
		}
		r.cc.scanCounts(r)
	}
	r.coordFn = r.coordinate
	return r
}

// runAll executes the run's whole generation loop on the engine's worker
// pool: every worker enters workerLoop once and leaves when the last
// generation produces nothing.
func (r *roundExecutor[T]) runAll(pool *para.Pool) {
	pool.Run(r.nthreads, r.workerFn)
}

// workerLoop is one worker's life for the whole run. The structure mirrors
// Figure 2 with the serial sections fused into barrier callbacks:
//
//	form generation (parallel) ─ barrier[startGeneration]
//	per round: inspect ─ barrier[stamp] ─ execute ─
//	           (gatherPar: barrier[scan] ─ place) ─ barrier[coordinate]
//	serial rounds instead run both phases on worker 0 ─ barrier[coordinate].
//
// Shared round state (done, serialRound, cur, counters, ...) is written
// ONLY inside barrier callbacks; workers read it strictly between barrier
// crossings. This is what keeps every worker taking the same branches — and
// therefore the same number of barrier crossings — each round; a write
// outside a callback (e.g. worker 0 coordinating a serial round in the
// open) can be observed torn across rounds by a slow worker, desynchronizing
// the barrier pairing.
func (r *roundExecutor[T]) workerLoop(tid int) {
	ctx := r.ctxs[tid]
	bar := r.bar
	for {
		r.formGeneration(tid)
		bar.WaitDo(r.startGenFn)
		for !r.done {
			if r.serialRound {
				// Worker 0 runs both phases; coordination still happens
				// inside the barrier callback. It must: coordinate mutates
				// the shared round state (done, serialRound, cur, ...) that
				// the other workers read at the top of this loop, and those
				// reads are only ordered against writes made while they
				// were parked in the barrier.
				if tid == 0 {
					r.serialPhases(ctx)
				}
				bar.WaitDo(r.coordFn)
				continue
			}
			r.inspectPhase(ctx, tid)
			bar.WaitDo(r.stampFn)
			r.execPhase(ctx, tid)
			if r.gatherPar {
				//detlint:ordered the scan callback orders every chunk's counts into exclusive offsets; placement below writes disjoint slots that are pure functions of those offsets and each task's window index
				bar.WaitDo(r.scanFn)
				r.cc.place(r)
			}
			bar.WaitDo(r.coordFn)
		}
		if r.runDone {
			return
		}
	}
}

// formGeneration is one worker's share of forming the next generation from
// formItems/formChildren: fill, locality interleave and id assignment fused
// into one pass over a static block partition. Output slot p is a pure
// function of p — its source index comes from interleaveSrc, its id is p+1
// — so the partition cannot perturb the deterministic order (§3.2). Under
// the serial-coordinator oracle, worker 0 instead runs the historical
// serial fill/interleave/assignIDs passes.
func (r *roundExecutor[T]) formGeneration(tid int) {
	if r.opt.SerialCoordinator {
		if tid == 0 {
			r.formSerial()
		}
		return
	}
	n := r.formN
	backing := r.gen.arena.tasks[:n]
	order := r.gen.arena.order[:n]
	items, children := r.formItems, r.formChildren
	buckets := r.buckets
	lo, hi := para.BlockRange(n, r.nthreads, tid)
	for p := lo; p < hi; p++ {
		src := p
		if buckets > 1 {
			src = interleaveSrc(p, n, buckets)
		}
		t := &backing[p]
		if items != nil {
			t.item = items[src]
		} else {
			t.item = children[src].item
		}
		t.acquired = t.acquired[:0]
		t.children = t.children[:0]
		t.commitFn = nil
		t.failed = false
		t.rec.Reset(uint64(p) + 1)
		order[p] = t
	}
	if tid == 0 {
		r.gen.tasks = order
	}
}

// formSerial is the serial-oracle generation formation: the historical
// fill + interleave + assignIDs sequence on worker 0.
func (r *roundExecutor[T]) formSerial() {
	if r.formItems != nil {
		items := r.formItems
		r.gen.fill(r.formN, func(i int) T { return items[i] })
	} else {
		children := r.formChildren
		r.gen.fill(r.formN, func(i int) T { return children[i].item })
	}
	if r.opt.LocalityInterleave {
		r.gen.interleave(r.win.size)
	}
	r.gen.assignIDs()
}

// beginGeneration fixes the forming generation's window policy and
// interleave shape. Serial (pre-fork or inside endGeneration).
func (r *roundExecutor[T]) beginGeneration() {
	r.win = newWindowPolicy(r.formN, r.opt)
	r.buckets = 1
	if r.opt.LocalityInterleave && !r.opt.SerialCoordinator {
		r.buckets = interleaveBuckets(r.formN, r.win.size)
	}
}

// startGeneration opens the freshly formed generation: barrier callback
// after the formation pass. The commit collector is reset here — after
// formation, because formChildren aliases its produced buffer until every
// item has been copied out.
func (r *roundExecutor[T]) startGeneration() {
	r.cc.reset()
	r.formItems, r.formChildren = nil, nil
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenStart, Gen: r.genIdx,
		Args: [4]int64{int64(r.formN)}})
	r.next = r.gen.tasks
	r.round = -1
	r.done = false
	r.setupRound()
}

// setupRound forms the next round from the pending tasks, or marks the
// generation done. Serial (a barrier callback, or worker 0 in a serial
// round).
func (r *roundExecutor[T]) setupRound() {
	if len(r.next) == 0 {
		r.done = true
		return
	}
	w := r.win.next(len(r.next))
	r.w = w
	r.cur, r.rest = r.next[:w:w], r.next[w:]
	r.round++
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundStart, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(w), int64(len(r.rest))}})
	chunk := int64(w / (r.nthreads * 8))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	r.chunk = chunk
	r.insCtr.Store(0)
	r.exeCtr.Store(0)
	r.plcCtr.Store(0)
	r.serialRound = !r.opt.SerialCoordinator && (r.nthreads == 1 || w <= r.nthreads)
	r.gatherPar = !r.opt.SerialCoordinator && !r.serialRound &&
		r.nthreads > 1 && w >= parGatherMin
	if r.gatherPar {
		r.cc.prepareCounts(r)
	}
	if r.timed {
		r.ts0 = obs.Nanotime()
	}
}

// inspectPhase is one worker's share of Phase 1 (Figure 2 line 14): claim
// chunks of the window and run each task through its failsafe point in
// inspect mode.
func (r *roundExecutor[T]) inspectPhase(ctx *Ctx[T], tid int) {
	for {
		start := r.insCtr.Add(r.chunk) - r.chunk
		if start >= int64(len(r.cur)) {
			return
		}
		end := min(start+r.chunk, int64(len(r.cur)))
		for _, t := range r.cur[start:end] {
			inspectTask(ctx, t, r.body, tid, r.opt.Continuation)
		}
	}
}

// execPhase is one worker's share of Phase 2 (Figure 2 line 19): claim
// chunks and commit or fail each task of the window. Under gatherPar it
// also records the chunk's failed-task and produced-children counts — the
// input of the exclusive scan that reproduces the serial gather order. The
// chunk index is start/chunk (claims advance in chunk-sized steps), so each
// count slot has exactly one writer.
func (r *roundExecutor[T]) execPhase(ctx *Ctx[T], tid int) {
	counting := r.gatherPar
	for {
		start := r.exeCtr.Add(r.chunk) - r.chunk
		if start >= int64(len(r.cur)) {
			return
		}
		end := min(start+r.chunk, int64(len(r.cur)))
		var nf, nch int64
		for _, t := range r.cur[start:end] {
			execTask(ctx, t, r.body, tid, r.opt.Continuation)
			if t.failed {
				nf++
			} else {
				nch += int64(len(t.children))
			}
		}
		if counting {
			c := start / r.chunk
			r.cc.failCounts[c] = nf
			r.cc.childCounts[c] = nch
		}
	}
}

// serialPhases executes a sub-parallel round's inspect and execute phases
// entirely on worker 0, as plain loops (no claim counters). Coordination is
// NOT part of it — the caller runs coordinate as a barrier callback, the
// only place shared round state may be written (see workerLoop). The event
// sequence is identical to the parallel pipelines' by construction — every
// emission happens in the shared setupRound/finishRound/endGeneration path.
func (r *roundExecutor[T]) serialPhases(ctx *Ctx[T]) {
	for _, t := range r.cur {
		inspectTask(ctx, t, r.body, 0, r.opt.Continuation)
	}
	if r.timed {
		r.ts1 = obs.Nanotime()
	}
	for _, t := range r.cur {
		execTask(ctx, t, r.body, 0, r.opt.Continuation)
	}
}

// coordinate is the end-of-round serial section (a barrier callback, or
// the tail of a serial round on worker 0): complete the gather, adapt the
// window, set up the next round, and close the generation when the pending
// list is empty.
func (r *roundExecutor[T]) coordinate() {
	if r.gatherPar {
		// Placement is complete: failed tasks staged in failScratch in
		// ascending window order, children already at their scanned
		// offsets. One copy re-forms the failed-first prefix of the
		// pending list — the same next[w-nf:w] contents the serial
		// backward compaction produces (gather's in-place scan cannot be
		// run concurrently with placement because cur aliases next[:w]).
		copy(r.next[r.w-r.nf:r.w], r.cc.failScratch[:r.nf])
		r.finishRound(r.w-r.nf, r.nf)
	} else {
		if r.timed {
			r.ts2 = obs.Nanotime()
		}
		r.cc.gather(r)
	}
	r.setupRound()
	if r.done {
		r.endGeneration()
	}
}

// finishRound records the completed round: phase durations, statistics,
// trace events, the window decision, and the pending-list trim. Shared by
// all three round pipelines so their event sequences cannot diverge.
func (r *roundExecutor[T]) finishRound(committed, nf int) {
	if r.timed {
		ts3 := obs.Nanotime()
		insNS, exeNS, coNS := r.ts1-r.ts0, r.ts2-r.ts1, ts3-r.ts2
		emit(r.sink, 0, obs.Event{Kind: obs.KindPhases, Gen: r.genIdx, Round: r.round,
			Args: [4]int64{insNS, exeNS, coNS}})
		if r.met != nil {
			r.met.phaseInspect.Observe(0, insNS)
			r.met.phaseExec.Observe(0, exeNS)
			r.met.phaseCoord.Observe(0, coNS)
		}
	}
	r.col.Round(len(r.cur), committed)
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundEnd, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(len(r.cur)), int64(committed), int64(nf)}})
	if r.opt.Continuation {
		// §3.3 continuation aggregates: every task in the round
		// suspended at its failsafe point during inspect; the committed
		// ones resumed.
		emit(r.sink, 0, obs.Event{Kind: obs.KindSuspend, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(len(r.cur))}})
		emit(r.sink, 0, obs.Event{Kind: obs.KindResume, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(committed)}})
	}
	if r.met != nil {
		r.met.tasksPerRound.Observe(0, int64(committed))
		r.met.abortsPerRound.Observe(0, int64(nf))
	}
	dec := r.win.update(len(r.cur), committed)
	grew := int64(0)
	if dec.Grew {
		grew = 1
	}
	emit(r.sink, 0, obs.Event{Kind: obs.KindWindow, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(dec.Before), int64(dec.After), dec.RatioPermille, grew}})
	r.next = r.next[r.w-nf:]
}

// endGeneration closes the exhausted generation: sort the produced
// children, recycle the arena, and stage the next generation's formation —
// or mark the run done. Runs in the last round's coordination (all other
// workers parked), so the sort's internal fork-join is safe here.
func (r *roundExecutor[T]) endGeneration() {
	st := r.st
	produced := r.cc.produced
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenEnd, Gen: r.genIdx,
		Args: [4]int64{int64(len(produced))}})
	if len(produced) == 0 {
		r.runDone = true
		return
	}
	st.sortScratch = sortChildren(produced, r.opt.PreassignedIDs, r.nthreads, st.sortScratch)
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenSort, Gen: r.genIdx,
		Args: [4]int64{int64(len(produced))}})
	// The parent generation is fully committed; recycle its arena before
	// taking the next so same-class generations reuse it.
	st.free.put(r.gen.arena)
	r.gen = generation[T]{arena: st.free.take(len(produced))}
	r.genIdx++
	r.formItems, r.formChildren = nil, produced
	r.formN = len(produced)
	r.beginGeneration()
}

// release drops the run-scoped references so a retained executor does not
// pin the finished run's items, body, sink or arena.
func (r *roundExecutor[T]) release() {
	r.opt = Options{}
	r.body = nil
	r.ctxs = nil
	r.col = nil
	r.met = nil
	r.sink = nil
	r.bar = nil
	r.gen = generation[T]{}
	r.formItems, r.formChildren = nil, nil
	r.next, r.cur, r.rest = nil, nil, nil
}
