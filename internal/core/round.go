package core

import (
	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
)

// serialSpan scales the serial-round threshold: a round of w <= serialSpan
// × nthreads tasks runs entirely inside one barrier callback (and
// consecutive such rounds batch into the SAME callback, costing zero extra
// crossings). Above it the two parallel phases pay for their barriers. A
// policy constant, not a machine parameter: it selects between pipelines
// that produce byte-identical output.
const serialSpan = 2

// roundExecutor runs the DIG generation/round loop of Figure 2 inside one
// persistent worker region: generation formation, the static-partition
// inspect and execute phases, and the end-of-round coordination. It is
// retained by the engine per item type and reset per run, so driving it
// allocates nothing in the steady state.
//
// A parallel round costs exactly two barrier crossings — the semantic floor
// of the DIG protocol. The inspect→execute rendezvous is required because a
// task's round outcome (marks.Rec.Prevented) is decided by the LAST
// inspect that touches any of its locations, so no execute may start before
// every inspect finishes; the execute→next-inspect rendezvous is required
// because committed tasks mutate shared state the next round's inspects
// read. Everything else is fused into those two crossings:
//
//   - each worker owns a static range of the window (para.BlockRange), the
//     same range in inspect and execute, so there are no claim-counter
//     atomics and a worker re-touches cache-warm task records across phases
//     (the paper's Opt 2, applied to the round pipeline);
//   - the gather is fused into the execute phase: each worker appends its
//     range's failed tasks and produced children to a per-worker lane
//     (commitCollector.lanes), so no separate count/scan/place phases — and
//     no third barrier — are needed. Lane order is window order by
//     construction, and children need no round-level order at all because
//     every generation is sorted by globally-unique keys before forming the
//     next (see endGeneration);
//   - the serial end-of-round step (failed-lane merge, window adaptation,
//     next-round setup) runs as a para.Barrier.WaitDo callback, executed by
//     the last worker to arrive while the others are parked in the same
//     barrier;
//   - rounds too small to parallelize (w <= serialSpan × nthreads) never
//     return to the workers: the coordination callback drains the whole
//     consecutive stretch of them inline (advance), so a batch of k serial
//     rounds costs ONE crossing instead of k or 2k. The batch boundary —
//     like every pipeline choice — is a pure function of (w, nthreads,
//     opt), so batching cannot reach committed output; the window-policy
//     sequence itself, which IS schedule-bearing, is untouched.
//
// All non-atomic fields are written only in serial sections: before the
// workers fork or inside a WaitDo callback. The callbacks are pure
// functions of that shared state, so which worker happens to run them
// cannot reach committed output; their events are emitted under tid 0,
// whose buffer no other thread touches while the callback holds the
// barrier.
type roundExecutor[T any] struct {
	st   *engState[T]
	opt  Options
	body func(*Ctx[T], T)
	ctxs []*Ctx[T]
	col  *stats.Collector
	met  *coreMetrics
	sink obs.Sink
	bar  *para.Barrier

	nthreads int
	genIdx   int32
	round    int32
	done     bool // current generation exhausted
	runDone  bool // no next generation: workers exit

	// gen is the live generation; formItems/formChildren (exactly one
	// non-nil) and formN describe the generation about to be formed;
	// buckets is its locality-interleave bucket count (<= 1: identity).
	gen          generation[T]
	formItems    []T
	formChildren []child[T]
	formN        int
	buckets      int

	// next is the generation's pending tasks in deterministic order; cur is
	// the current round's window prefix (capacity-capped so no append can
	// spill into rest), rest the remainder.
	next []*detTask[T]
	w    int
	cur  []*detTask[T]
	rest []*detTask[T]

	// serialRound: this round runs entirely inside the coordination
	// callback (w <= serialSpan*nthreads — forking costs more than it
	// buys). A pure function of (w, nthreads, opt), never of the machine,
	// so the pipeline choice is reproducible.
	serialRound bool

	win windowPolicy
	cc  *commitCollector[T]

	// Phase timing (observational). ts0/ts1/ts2 mark round start, inspect
	// end, execute end; each is written in a serial section.
	ts0, ts1, ts2 int64

	// barCrossings counts barrier crossings (each callback entry is one
	// crossing); barMark snapshots it at the previous round's close, so
	// finishRound attributes crossings to rounds. Serial-section writes.
	barCrossings uint64
	barMark      uint64

	// Pre-built callbacks for the barrier fusion and the pool, so the hot
	// loop never constructs a closure (a method value passed to WaitDo
	// would allocate on every round).
	workerFn   func(int)
	startGenFn func()
	stampFn    func()
	coordFn    func()
}

// newRoundExecutor returns an executor bound to its engine state, with the
// reusable callbacks built once.
func newRoundExecutor[T any](st *engState[T]) *roundExecutor[T] {
	r := &roundExecutor[T]{st: st}
	r.workerFn = r.workerLoop
	r.startGenFn = r.startGeneration
	r.stampFn = func() {
		r.barCrossings++
		r.ts1 = obs.Nanotime()
	}
	r.coordFn = r.coordinate
	return r
}

// runAll executes the run's whole generation loop on the engine's worker
// pool: every worker enters workerLoop once and leaves when the last
// generation produces nothing.
func (r *roundExecutor[T]) runAll(pool *para.Pool) {
	pool.Run(r.nthreads, r.workerFn)
}

// workerLoop is one worker's life for the whole run. The structure mirrors
// Figure 2 with every serial section fused into barrier callbacks:
//
//	form generation (parallel) ─ barrier[startGeneration]
//	per parallel round: inspect own range ─ barrier[stamp] ─
//	                    execute own range ─ barrier[coordinate]
//
// Sub-parallel rounds never appear here: the coordination callbacks drain
// them inline (advance), so workers only ever see parallel rounds or the
// end of the generation. Shared round state (done, w, cur, ...) is written
// ONLY inside barrier callbacks; workers read it strictly between barrier
// crossings, which is what keeps every worker taking the same branches —
// and therefore the same number of barrier crossings — each round.
func (r *roundExecutor[T]) workerLoop(tid int) {
	ctx := r.ctxs[tid]
	bar := r.bar
	for {
		r.formGeneration(tid)
		bar.WaitDo(r.startGenFn)
		for !r.done {
			lo, hi := para.BlockRange(r.w, r.nthreads, tid)
			r.inspectRange(ctx, tid, lo, hi)
			bar.WaitDo(r.stampFn)
			r.execRange(ctx, tid, lo, hi)
			bar.WaitDo(r.coordFn)
		}
		if r.runDone {
			return
		}
	}
}

// formGeneration is one worker's share of forming the next generation from
// formItems/formChildren: fill, locality interleave and id assignment fused
// into one pass over a static block partition. Output slot p is a pure
// function of p — its source index comes from interleaveSrc, its id is p+1
// — so the partition cannot perturb the deterministic order (§3.2), and id
// assignment never enters a serial section (the paper's Opt 3). Under the
// serial-coordinator oracle, worker 0 instead runs the historical serial
// fill/interleave/assignIDs passes.
func (r *roundExecutor[T]) formGeneration(tid int) {
	if r.opt.SerialCoordinator {
		if tid == 0 {
			r.formSerial()
		}
		return
	}
	n := r.formN
	backing := r.gen.arena.tasks[:n]
	order := r.gen.arena.order[:n]
	items, children := r.formItems, r.formChildren
	buckets := r.buckets
	lo, hi := para.BlockRange(n, r.nthreads, tid)
	for p := lo; p < hi; p++ {
		src := p
		if buckets > 1 {
			src = interleaveSrc(p, n, buckets)
		}
		t := &backing[p]
		if items != nil {
			t.item = items[src]
		} else {
			t.item = children[src].item
		}
		t.acquired = t.acquired[:0]
		t.children = t.children[:0]
		t.commitFn = nil
		t.failed = false
		t.rec.Reset(uint64(p) + 1)
		order[p] = t
	}
	if tid == 0 {
		r.gen.tasks = order
	}
}

// formSerial is the serial-oracle generation formation: the historical
// fill + interleave + assignIDs sequence on worker 0.
func (r *roundExecutor[T]) formSerial() {
	if r.formItems != nil {
		items := r.formItems
		r.gen.fill(r.formN, func(i int) T { return items[i] })
	} else {
		children := r.formChildren
		r.gen.fill(r.formN, func(i int) T { return children[i].item })
	}
	if r.opt.LocalityInterleave {
		r.gen.interleave(r.win.size)
	}
	r.gen.assignIDs()
}

// beginGeneration fixes the forming generation's window policy and
// interleave shape. Serial (pre-fork or inside endGeneration).
func (r *roundExecutor[T]) beginGeneration() {
	r.win = newWindowPolicy(r.formN, r.opt)
	r.buckets = 1
	if r.opt.LocalityInterleave && !r.opt.SerialCoordinator {
		r.buckets = interleaveBuckets(r.formN, r.win.size)
	}
}

// startGeneration opens the freshly formed generation: barrier callback
// after the formation pass. The commit collector is reset here — after
// formation, because formChildren aliases its produced buffer until every
// item has been copied out. Like coordinate, it drains any leading
// stretch of sub-parallel rounds before releasing the workers.
func (r *roundExecutor[T]) startGeneration() {
	r.barCrossings++
	r.cc.reset()
	r.formItems, r.formChildren = nil, nil
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenStart, Gen: r.genIdx,
		Args: [4]int64{int64(r.formN)}})
	r.next = r.gen.tasks
	r.round = -1
	r.done = false
	r.advance()
}

// setupRound forms the next round from the pending tasks, or marks the
// generation done. Serial (a barrier callback).
func (r *roundExecutor[T]) setupRound() {
	if len(r.next) == 0 {
		r.done = true
		return
	}
	w := r.win.next(len(r.next))
	r.w = w
	r.cur, r.rest = r.next[:w:w], r.next[w:]
	r.round++
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundStart, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(w), int64(len(r.rest))}})
	r.serialRound = !r.opt.SerialCoordinator &&
		(r.nthreads == 1 || w <= serialSpan*r.nthreads)
	r.ts0 = obs.Nanotime()
}

// advance moves the generation forward from inside a barrier callback:
// set up the next round and, while it is sub-parallel, run it right here —
// both phases as plain loops on the callback's goroutine (every other
// worker is parked in the barrier, so ctx 0 has exactly one user), the
// gather as the serial walk. A contended stretch of shrunken windows
// therefore crosses ONE barrier total instead of one (or two) per round —
// this is the round-batching the commit-ratio window enables: the window
// policy shrinks w under conflict, w <= serialSpan*nthreads flags the
// round serial, and the batch ends (deterministically) the moment the
// policy grows the window back above the threshold. When the pending list
// empties the generation is closed in the same callback.
func (r *roundExecutor[T]) advance() {
	r.setupRound()
	for !r.done && r.serialRound {
		ctx := r.ctxs[0]
		for _, t := range r.cur {
			inspectTask(ctx, t, r.body, 0, r.opt.Continuation)
		}
		r.ts1 = obs.Nanotime()
		for _, t := range r.cur {
			execTask(ctx, t, r.body, 0, r.opt.Continuation)
		}
		r.ts2 = obs.Nanotime()
		r.cc.gather(r)
		r.setupRound()
	}
	if r.done {
		r.endGeneration()
	}
}

// inspectRange runs Phase 1 (Figure 2 line 14) over the worker's static
// share of the window: each task runs through its failsafe point in
// inspect mode, write-max-marking its neighborhood.
func (r *roundExecutor[T]) inspectRange(ctx *Ctx[T], tid, lo, hi int) {
	for _, t := range r.cur[lo:hi] {
		inspectTask(ctx, t, r.body, tid, r.opt.Continuation)
	}
}

// execRange runs Phase 2 (Figure 2 line 19) over the same static range the
// worker inspected — the task records are still cache-warm from Phase 1.
// The gather is fused in: failed tasks and produced children go to the
// worker's own lane, eliminating the separate count/scan/place phases (and
// their barrier). Under the serial-coordinator oracle the harvest is left
// to the serial gather walk instead, preserving the historical pipeline as
// the differential baseline.
func (r *roundExecutor[T]) execRange(ctx *Ctx[T], tid, lo, hi int) {
	if r.opt.SerialCoordinator {
		for _, t := range r.cur[lo:hi] {
			execTask(ctx, t, r.body, tid, r.opt.Continuation)
		}
		return
	}
	lane := &r.cc.lanes[tid]
	failed := lane.failed[:0]
	children := lane.children
	for _, t := range r.cur[lo:hi] {
		execTask(ctx, t, r.body, tid, r.opt.Continuation)
		if t.failed {
			failed = append(failed, t)
			continue
		}
		if len(t.children) > 0 {
			children = append(children, t.children...)
		}
		// Drop the commit closure (it can pin arbitrary user state) but
		// keep the acquired/children buffers: their capacity is the
		// engine's per-task scratch, recycled by the next fill.
		t.commitFn = nil
	}
	lane.failed = failed
	lane.children = children
}

// coordinate is the end-of-round serial section of a parallel round (a
// barrier callback): merge the per-worker failed lanes back into the
// pending list, record the round, and advance — possibly through a whole
// batch of sub-parallel rounds — before the workers are released.
func (r *roundExecutor[T]) coordinate() {
	r.barCrossings++
	r.ts2 = obs.Nanotime()
	if r.opt.SerialCoordinator {
		r.cc.gather(r)
	} else {
		nf := r.cc.mergeFailed(r)
		r.finishRound(r.w-nf, nf)
	}
	r.advance()
}

// finishRound records the completed round: phase durations, statistics,
// trace events, the window decision, and the pending-list trim. Shared by
// every round pipeline so their event sequences cannot diverge.
func (r *roundExecutor[T]) finishRound(committed, nf int) {
	ts3 := obs.Nanotime()
	insNS, exeNS, coNS := r.ts1-r.ts0, r.ts2-r.ts1, ts3-r.ts2
	crossed := r.barCrossings - r.barMark
	r.barMark = r.barCrossings
	// The crossings arg rides in KindPhases because, like the durations, it
	// depends on the thread count (pipeline choice) — KindPhases args are
	// excluded from the canonical sequence, which must be thread-invariant.
	emit(r.sink, 0, obs.Event{Kind: obs.KindPhases, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{insNS, exeNS, coNS, int64(crossed)}})
	if r.met != nil {
		r.met.phaseInspect.Observe(0, insNS)
		r.met.phaseExec.Observe(0, exeNS)
		r.met.phaseCoord.Observe(0, coNS)
		r.met.barriers.Add(0, crossed)
	}
	r.col.Round(len(r.cur), committed)
	r.col.Phase(insNS, exeNS, coNS)
	r.col.Barriers(crossed)
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundEnd, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(len(r.cur)), int64(committed), int64(nf)}})
	if r.opt.Continuation {
		// §3.3 continuation aggregates: every task in the round
		// suspended at its failsafe point during inspect; the committed
		// ones resumed.
		emit(r.sink, 0, obs.Event{Kind: obs.KindSuspend, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(len(r.cur))}})
		emit(r.sink, 0, obs.Event{Kind: obs.KindResume, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(committed)}})
	}
	if r.met != nil {
		r.met.tasksPerRound.Observe(0, int64(committed))
		r.met.abortsPerRound.Observe(0, int64(nf))
	}
	dec := r.win.update(len(r.cur), committed)
	grew := int64(0)
	if dec.Grew {
		grew = 1
	}
	emit(r.sink, 0, obs.Event{Kind: obs.KindWindow, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(dec.Before), int64(dec.After), dec.RatioPermille, grew}})
	r.next = r.next[r.w-nf:]
}

// endGeneration closes the exhausted generation: merge the per-worker
// children lanes into the produced buffer, sort it, recycle the arena, and
// stage the next generation's formation — or mark the run done. Runs
// inside a coordination callback (all other workers parked), so the sort's
// internal fork-join is safe here.
func (r *roundExecutor[T]) endGeneration() {
	st := r.st
	produced := r.cc.mergeProduced(r.nthreads)
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenEnd, Gen: r.genIdx,
		Args: [4]int64{int64(len(produced))}})
	if len(produced) == 0 {
		r.runDone = true
		return
	}
	st.sortScratch = sortChildren(produced, r.opt.PreassignedIDs, r.nthreads, st.sortScratch)
	emit(r.sink, 0, obs.Event{Kind: obs.KindGenSort, Gen: r.genIdx,
		Args: [4]int64{int64(len(produced))}})
	// The parent generation is fully committed; recycle its arena before
	// taking the next so same-class generations reuse it.
	st.free.put(r.gen.arena)
	r.gen = generation[T]{arena: st.free.take(len(produced))}
	r.genIdx++
	r.formItems, r.formChildren = nil, produced
	r.formN = len(produced)
	r.beginGeneration()
}

// release drops the run-scoped references so a retained executor does not
// pin the finished run's items, body, sink or arena.
func (r *roundExecutor[T]) release() {
	r.opt = Options{}
	r.body = nil
	r.ctxs = nil
	r.col = nil
	r.met = nil
	r.sink = nil
	r.bar = nil
	r.gen = generation[T]{}
	r.formItems, r.formChildren = nil, nil
	r.next, r.cur, r.rest = nil, nil, nil
}
