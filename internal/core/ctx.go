package core

import (
	"galois/internal/cachesim"
	"galois/internal/marks"
	"galois/internal/stats"
)

// mode is the execution mode of a task body. One body runs under up to
// three modes depending on the scheduler and optimizations, which is what
// makes determinism "on-demand": the program text never changes.
type mode int

const (
	// modeDirect: non-deterministic scheduler; Acquire locks eagerly and
	// aborts on conflict (Figure 1b).
	modeDirect mode = iota
	// modeInspect: DIG inspect phase; Acquire performs writeMarksMax and
	// never aborts (Figure 3), so every task contributes its id to the
	// max at every neighborhood location.
	modeInspect
	// modeValidate: DIG baseline commit phase; the body re-executes and
	// Acquire checks that every mark still holds the task's id
	// (Figure 3, selectAndExec line 11).
	modeValidate
)

// conflictSignal is the panic sentinel used to unwind a task on conflict.
// Cautious tasks perform no global writes before the failsafe point, so
// unwinding is all the rollback that is ever needed (§2.1).
type conflictSignal struct{}

// child is a dynamically created task plus its deterministic sort key.
type child[T any] struct {
	item T
	// parent is id(t) of the creating task; k is the creation index
	// within the parent. Together they are the lexicographic sort key of
	// §3.2. In PreassignedIDs mode, pre carries the user-supplied id.
	parent uint64
	k      uint64
	pre    uint64
}

// Ctx is the per-task execution context handed to task bodies. It carries
// the task's mark record, its discovered neighborhood, the deferred commit
// closure and any created children. A Ctx is owned by one worker goroutine
// at a time and must not escape the task body.
type Ctx[T any] struct {
	tid     int
	threads int
	mode    mode
	det     bool
	rec     *marks.Rec

	// acquired is the neighborhood discovered so far: locations this
	// task owned at acquire time. Owners clear these marks at round end.
	acquired []*marks.Lockable
	// commitFn is the failsafe continuation registered by OnCommit.
	commitFn func(*Ctx[T])
	// inCommit is true while commitFn runs; Acquire is then illegal.
	inCommit bool
	// failed is set in inspect mode when the task loses a location; the
	// body keeps running so that remaining locations still see its id.
	failed bool

	children []child[T]
	nchild   uint64
	// scratch is a ctx-owned children buffer for validate-mode
	// re-execution. After the inspect phase, children aliases the buffer
	// of the last task this worker inspected; validate-mode bodies must
	// append into a buffer no task owns, or two tasks executing
	// concurrently on different workers could write one backing array.
	scratch []child[T]

	ops int // batched atomic-op count, flushed to col per task
	col *stats.Collector
	pro *cachesim.Tracer
	met *coreMetrics
}

// prepare binds a retained context's per-run fields. Engines keep contexts
// alive across runs (their acquired/children capacity is part of the
// allocation-free steady state); prepare is called serially before the
// workers of a new run fork.
func (c *Ctx[T]) prepare(threads int, det bool, col *stats.Collector, opt Options, met *coreMetrics) {
	c.threads = threads
	c.det = det
	c.col = col
	c.pro = opt.Profile
	c.met = met
}

func (c *Ctx[T]) reset(tid int, m mode, rec *marks.Rec) {
	c.tid = tid
	c.mode = m
	c.rec = rec
	c.acquired = c.acquired[:0]
	c.commitFn = nil
	c.inCommit = false
	c.failed = false
	c.children = c.children[:0]
	c.nchild = 0
	c.ops = 0
}

// TID returns the executing worker's id in [0, Threads()). It is stable for
// the duration of one body or commit-closure execution only.
func (c *Ctx[T]) TID() int { return c.tid }

// Threads returns the number of workers executing the loop.
func (c *Ctx[T]) Threads() int { return c.threads }

// Deterministic reports whether the loop runs under the DIG scheduler.
// Programs should not branch on this to change their output — doing so
// forfeits the on-demand property — but it is useful for diagnostics.
func (c *Ctx[T]) Deterministic() bool { return c.det }

// Acquire adds the abstract location l to the task's neighborhood. Every
// read of shared state must be preceded by acquiring the location that
// guards it; this is what makes tasks cautious by construction.
//
// Under the non-deterministic scheduler a conflict aborts and retries the
// task. Under the DIG scheduler, inspect-phase acquisition performs
// writeMarksMax and execute-phase acquisition validates ownership.
func (c *Ctx[T]) Acquire(l *marks.Lockable) {
	if c.inCommit || c.commitFn != nil {
		panic("galois: Acquire after OnCommit — task is not cautious")
	}
	if c.pro != nil {
		c.pro.Touch(c.tid, l)
	}
	switch c.mode {
	case modeDirect:
		ok, ops := l.TryAcquire(c.rec)
		c.ops += ops
		if !ok {
			if c.met != nil {
				c.met.failDepth.Observe(c.tid, int64(len(c.acquired)))
			}
			panic(conflictSignal{})
		}
		if len(c.acquired) == 0 || c.acquired[len(c.acquired)-1] != l {
			c.acquired = append(c.acquired, l)
		}
	case modeInspect:
		owned, stole, ops := l.WriteMax(c.rec)
		c.ops += ops
		if owned {
			if stole != nil {
				// The displaced lower-id task can no longer
				// own all of its neighborhood (§3.3).
				stole.Prevented.Store(true)
				c.ops++
			}
			// Re-acquiring an owned location appends a duplicate;
			// clearing and validation are idempotent, so that is
			// harmless and cheaper than deduplicating here.
			c.acquired = append(c.acquired, l)
		} else {
			// A higher-id task holds the mark; this task cannot
			// commit this round, but inspection continues so the
			// remaining locations still observe its id.
			if c.met != nil && !c.failed {
				c.met.failDepth.Observe(c.tid, int64(len(c.acquired)))
			}
			c.failed = true
			c.rec.Prevented.Store(true)
			c.ops++
		}
	case modeValidate:
		c.ops++
		if !l.OwnedBy(c.rec) {
			panic(conflictSignal{})
		}
	}
}

// OnCommit registers the task's write phase. The call marks the failsafe
// point of §2.1: everything before it must be read-only with respect to
// shared state; all shared writes go inside fn. fn runs exactly once if and
// when the task commits, and never runs for aborted or failed attempts.
//
// Under the continuation optimization (§3.3) fn may run on a different
// worker, long after the task body returned; it therefore receives the
// executing context as its argument and MUST NOT capture the context that
// was passed to the task body.
//
// A task without shared writes may omit OnCommit entirely.
func (c *Ctx[T]) OnCommit(fn func(*Ctx[T])) {
	if c.inCommit {
		panic("galois: OnCommit inside OnCommit")
	}
	if c.commitFn != nil {
		panic("galois: OnCommit called twice in one task")
	}
	if fn == nil {
		panic("galois: OnCommit with nil function")
	}
	c.commitFn = fn
}

// Push creates a new task (an element of S(t), §2). The task enters the
// pool only if the creating task commits. Under the DIG scheduler the new
// task's deterministic id derives from (id(parent), creation index).
func (c *Ctx[T]) Push(item T) {
	c.nchild++
	c.children = append(c.children, child[T]{item: item, parent: c.rec.ID, k: c.nchild})
}

// PushWithID creates a new task with an explicit scheduling priority,
// implementing the pre-assigned-ids optimization of §3.3. It requires the
// loop to run with PreassignedIDs; ids must be unique across the loop for
// the schedule to be fully deterministic (ties are broken by creation
// order, which is deterministic under DIG anyway).
func (c *Ctx[T]) PushWithID(item T, id uint64) {
	c.nchild++
	c.children = append(c.children, child[T]{item: item, parent: c.rec.ID, k: c.nchild, pre: id})
}

// CountAtomic adds n application-level atomic updates to the run's
// statistics (the Figure 5 communication proxy) without performing any
// synchronization itself.
func (c *Ctx[T]) CountAtomic(n int) { c.ops += n }

// runBody executes body under the current mode, translating conflict
// panics into the returned flag. Any other panic propagates to the caller.
func (c *Ctx[T]) runBody(body func(*Ctx[T], T), item T) (conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	body(c, item)
	return false
}

// flushOps transfers the batched atomic-op count to the collector.
func (c *Ctx[T]) flushOps() {
	if c.ops != 0 {
		c.col.AtomicOp(c.tid, c.ops)
		c.ops = 0
	}
}

// traceCommitTouches records the write phase's accesses to the task's
// neighborhood for the locality model (§5.4): the commit phase revisits the
// data the read phase loaded. Under the non-deterministic scheduler the two
// visits are adjacent in time (cache hits); under DIG they are separated by
// the rest of the round's inspect phase — the locality loss the paper
// measures with DRAM counters.
func (c *Ctx[T]) traceCommitTouches(acquired []*marks.Lockable) {
	if c.pro == nil {
		return
	}
	for _, l := range acquired {
		c.pro.Touch(c.tid, l)
	}
}
