package core

import (
	"testing"
	"testing/quick"
)

func policy(n int) windowPolicy { return newWindowPolicy(n, Defaults()) }

func TestWindowDefaults(t *testing.T) {
	w := policy(6400)
	if w.size != 100 {
		t.Fatalf("initial = %d, want n/64 = 100", w.size)
	}
	w = policy(10)
	if w.size != defaultWindowMin {
		t.Fatalf("small-n initial = %d, want floor %d", w.size, defaultWindowMin)
	}
}

func TestWindowNextClampsToRemaining(t *testing.T) {
	w := policy(6400)
	if got := w.next(42); got != 42 {
		t.Fatalf("next(42) = %d", got)
	}
	if got := w.next(1000); got != 100 {
		t.Fatalf("next(1000) = %d", got)
	}
}

func TestWindowGrowsOnHighCommitRatio(t *testing.T) {
	w := policy(6400)
	before := w.size
	w.update(before, before) // 100% commits
	if w.size != 2*before {
		t.Fatalf("size = %d, want doubled %d", w.size, 2*before)
	}
}

func TestWindowShrinksProportionally(t *testing.T) {
	w := policy(6400)
	w.update(400, 40) // 10% commits, target 95%
	ratio := 0.10 / 0.95
	want := int(400*ratio) + 1 // 43, above the floor
	if w.size != want {
		t.Fatalf("size = %d, want %d", w.size, want)
	}
}

func TestWindowFloorHolds(t *testing.T) {
	w := policy(6400)
	for i := 0; i < 50; i++ {
		w.update(w.size, 0+1) // nearly everything fails
	}
	if w.size < w.min {
		t.Fatalf("size %d below floor %d", w.size, w.min)
	}
}

func TestWindowCapHolds(t *testing.T) {
	w := policy(1 << 30)
	for i := 0; i < 64; i++ {
		w.update(w.size, w.size)
	}
	if w.size > windowMax {
		t.Fatalf("size %d above cap %d", w.size, windowMax)
	}
}

func TestWindowGrowthUsesAttemptedWhenClamped(t *testing.T) {
	w := policy(6400) // size 100
	// A clamped round attempted more than the policy size (can happen
	// after failed tasks re-enter); doubling uses the larger base.
	w.update(300, 300)
	if w.size != 600 {
		t.Fatalf("size = %d, want 600", w.size)
	}
}

func TestWindowPureFunctionOfHistory(t *testing.T) {
	// Two policies fed the same (attempted, committed) history always
	// agree — the portability argument in miniature.
	property := func(seed int64) bool {
		a, b := policy(100000), policy(100000)
		x := uint64(seed)
		for i := 0; i < 50; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			att := int(x%1000) + 1
			com := int(x>>32) % (att + 1)
			a.update(att, com)
			b.update(att, com)
			if a.size != b.size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavePermuteIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
		for _, w0 := range []int{0, 1, 4, 16, 99, 1000} {
			in := make([]int, n)
			for i := range in {
				in[i] = i
			}
			out := interleavePermute(in, w0)
			if len(out) != n {
				t.Fatalf("n=%d w0=%d: length %d", n, w0, len(out))
			}
			seen := make([]bool, n)
			for _, v := range out {
				if seen[v] {
					t.Fatalf("n=%d w0=%d: duplicate %d", n, w0, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestInterleaveSrcMatchesAppendReference checks the analytic inverse
// against the obvious bucket construction: deal sources round-robin into
// ceil(n/w0) buckets and concatenate. interleaveSrc must reproduce that
// concatenation slot for slot — it is the single definition both the
// parallel generation formation and the serial oracle derive from.
func TestInterleaveSrcMatchesAppendReference(t *testing.T) {
	for _, n := range []int{3, 4, 5, 17, 64, 100, 1000, 1023} {
		for _, w0 := range []int{1, 2, 3, 4, 16, 63, 99, 999} {
			buckets := interleaveBuckets(n, w0)
			if buckets <= 1 {
				continue
			}
			ref := make([]int, 0, n)
			for b := 0; b < buckets; b++ {
				for src := b; src < n; src += buckets {
					ref = append(ref, src)
				}
			}
			for p := 0; p < n; p++ {
				if got := interleaveSrc(p, n, buckets); got != ref[p] {
					t.Fatalf("n=%d w0=%d p=%d: src %d, reference %d", n, w0, p, got, ref[p])
				}
			}
		}
	}
}

func TestInterleavePermuteSpreadsNeighbors(t *testing.T) {
	// Originally adjacent items must land in different w0-sized windows.
	n, w0 := 1024, 64
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	out := interleavePermute(in, w0)
	pos := make([]int, n)
	for p, v := range out {
		pos[v] = p
	}
	for i := 0; i+1 < n; i++ {
		if pos[i]/w0 == pos[i+1]/w0 {
			t.Fatalf("adjacent items %d,%d share window %d", i, i+1, pos[i]/w0)
		}
	}
}

func TestSortChildrenLexicographic(t *testing.T) {
	cs := []child[string]{
		{item: "c", parent: 2, k: 1},
		{item: "a", parent: 1, k: 1},
		{item: "b", parent: 1, k: 2},
		{item: "d", parent: 2, k: 2},
	}
	sortChildren(cs, false, 2, nil)
	got := ""
	for _, c := range cs {
		got += c.item
	}
	if got != "abcd" {
		t.Fatalf("order = %q", got)
	}
}

func TestSortChildrenPreassigned(t *testing.T) {
	cs := []child[string]{
		{item: "b", parent: 9, k: 1, pre: 5},
		{item: "a", parent: 1, k: 3, pre: 2},
		{item: "c", parent: 1, k: 1, pre: 5}, // tie on pre: parent breaks it
	}
	sortChildren(cs, true, 2, nil)
	got := ""
	for _, c := range cs {
		got += c.item
	}
	if got != "acb" {
		t.Fatalf("order = %q", got)
	}
}
