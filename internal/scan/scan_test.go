package scan

import (
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func TestExclusiveSumSmall(t *testing.T) {
	counts := []int64{3, 0, 5, 1}
	total := ExclusiveSum(counts, 4)
	if total != 9 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 8}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestExclusiveSumEmpty(t *testing.T) {
	if ExclusiveSum(nil, 4) != 0 {
		t.Fatal("empty scan nonzero")
	}
}

func TestExclusiveSumMatchesSerial(t *testing.T) {
	property := func(seed uint64, threadsRaw uint8) bool {
		r := rng.New(seed)
		threads := int(threadsRaw%8) + 1
		n := r.Intn(1 << 16)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(100))
			b[i] = a[i]
		}
		var acc int64
		for i := range b {
			v := b[i]
			b[i] = acc
			acc += v
		}
		total := ExclusiveSum(a, threads)
		if total != acc {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestExclusiveSumScratchReuse checks the retained-scratch contract the
// scheduler's per-round scan depends on: results identical to the
// allocating form for every (size, threads) mix — across the serial cutoff
// in both directions — and zero allocations once the scratch is warm.
func TestExclusiveSumScratchReuse(t *testing.T) {
	var s Scratch
	r := rng.New(11)
	for _, n := range []int{0, 1, 7, 1000, serialCutoff, serialCutoff + 1, 1 << 15} {
		for _, threads := range []int{1, 2, 3, 8} {
			a := make([]int64, n)
			b := make([]int64, n)
			for i := range a {
				a[i] = int64(r.Intn(50))
				b[i] = a[i]
			}
			wantTotal := ExclusiveSum(b, threads)
			total := ExclusiveSumScratch(a, threads, &s)
			if total != wantTotal {
				t.Fatalf("n=%d threads=%d: total %d, want %d", n, threads, total, wantTotal)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d threads=%d: scan diverges at %d", n, threads, i)
				}
			}
		}
	}
	// The round hot path: per-chunk count arrays stay far below the serial
	// cutoff, and that path must not allocate at all — it runs inside a
	// barrier callback every round. (The parallel path forks goroutines
	// and is only taken for scans far larger than any round produces.)
	hot := make([]int64, 4096)
	allocs := testing.AllocsPerRun(10, func() {
		for i := range hot {
			hot[i] = int64(i & 7)
		}
		ExclusiveSumScratch(hot, 8, &s)
	})
	if allocs != 0 {
		t.Errorf("warm ExclusiveSumScratch allocates %.0f per run, want 0", allocs)
	}
	// Warm scratch is retained across parallel-path calls: the block
	// buffers must not be rebuilt once grown.
	big := make([]int64, 1<<15)
	ExclusiveSumScratch(big, 8, &s)
	p0 := &s.sums[0]
	for i := range big {
		big[i] = 1
	}
	ExclusiveSumScratch(big, 8, &s)
	if p0 != &s.sums[0] {
		t.Error("parallel-path scratch reallocated on reuse")
	}
}

func TestPackPreservesOrder(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		nb := 1 + r.Intn(20)
		buffers := make([][]int, nb)
		var want []int
		next := 0
		for b := range buffers {
			l := r.Intn(50)
			for i := 0; i < l; i++ {
				buffers[b] = append(buffers[b], next)
				want = append(want, next)
				next++
			}
		}
		got := Pack(buffers, 4)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order broken at %d", i)
			}
		}
	}
}

func TestPackEmptyBuffers(t *testing.T) {
	if got := Pack([][]int{{}, {}, {}}, 2); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Pack[int](nil, 2); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
