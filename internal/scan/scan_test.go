package scan

import (
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func TestExclusiveSumSmall(t *testing.T) {
	counts := []int64{3, 0, 5, 1}
	total := ExclusiveSum(counts, 4)
	if total != 9 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 8}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestExclusiveSumEmpty(t *testing.T) {
	if ExclusiveSum(nil, 4) != 0 {
		t.Fatal("empty scan nonzero")
	}
}

func TestExclusiveSumMatchesSerial(t *testing.T) {
	property := func(seed uint64, threadsRaw uint8) bool {
		r := rng.New(seed)
		threads := int(threadsRaw%8) + 1
		n := r.Intn(1 << 16)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(100))
			b[i] = a[i]
		}
		var acc int64
		for i := range b {
			v := b[i]
			b[i] = acc
			acc += v
		}
		total := ExclusiveSum(a, threads)
		if total != acc {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPackPreservesOrder(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		nb := 1 + r.Intn(20)
		buffers := make([][]int, nb)
		var want []int
		next := 0
		for b := range buffers {
			l := r.Intn(50)
			for i := 0; i < l; i++ {
				buffers[b] = append(buffers[b], next)
				want = append(want, next)
				next++
			}
		}
		got := Pack(buffers, 4)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order broken at %d", i)
			}
		}
	}
}

func TestPackEmptyBuffers(t *testing.T) {
	if got := Pack([][]int{{}, {}, {}}, 2); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Pack[int](nil, 2); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
