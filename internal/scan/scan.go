// Package scan provides parallel prefix sums — the workhorse of the
// PBBS-style deterministic-by-construction codes: deterministic compaction
// (filtering a sequence while preserving order) reduces to an exclusive
// scan over per-block counts, which is how the handwritten deterministic
// bfs packs its next frontier without a serial concatenation.
package scan

import "galois/internal/para"

// serialCutoff is the size below which a sequential pass wins.
const serialCutoff = 1 << 14

// Scratch holds the block buffers of a parallel ExclusiveSum so a scan on a
// hot path (the deterministic scheduler runs one per round) allocates
// nothing once warm. The zero value is ready to use.
type Scratch struct {
	bounds []int
	sums   []int64
}

// ExclusiveSum replaces counts with its exclusive prefix sum and returns
// the total: counts'[i] = sum of counts[0:i].
func ExclusiveSum(counts []int64, nthreads int) int64 {
	var s Scratch
	return ExclusiveSumScratch(counts, nthreads, &s)
}

// ExclusiveSumScratch is ExclusiveSum with caller-retained block scratch.
// The result is identical for any nthreads and any scratch state; only the
// allocation behavior differs.
func ExclusiveSumScratch(counts []int64, nthreads int, s *Scratch) int64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	if nthreads <= 1 || n < serialCutoff {
		var acc int64
		for i, v := range counts {
			counts[i] = acc
			acc += v
		}
		return acc
	}
	// Three-phase blocked scan: per-block sums, serial scan of block
	// sums (cheap: one entry per block), per-block exclusive scan with
	// the block offset.
	blocks := nthreads * 4
	if blocks > n {
		blocks = n
	}
	if cap(s.bounds) < blocks+1 {
		s.bounds = make([]int, blocks+1)
	}
	bounds := s.bounds[:blocks+1]
	for i := 0; i <= blocks; i++ {
		bounds[i] = n * i / blocks
	}
	if cap(s.sums) < blocks {
		s.sums = make([]int64, blocks)
	}
	sums := s.sums[:blocks]
	para.ForBlocked(blocks, blocks, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			var s int64
			for _, v := range counts[bounds[b]:bounds[b+1]] {
				s += v
			}
			sums[b] = s
		}
	})
	var total int64
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	para.ForBlocked(blocks, blocks, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			acc := sums[b]
			for i := bounds[b]; i < bounds[b+1]; i++ {
				v := counts[i]
				counts[i] = acc
				acc += v
			}
		}
	})
	return total
}

// Pack concatenates the per-producer buffers into one slice in producer
// order using a parallel copy at scanned offsets — the deterministic
// frontier-packing step of level-synchronous algorithms. The result order
// is a pure function of the input buffers.
func Pack[T any](buffers [][]T, nthreads int) []T {
	counts := make([]int64, len(buffers))
	for i, b := range buffers {
		counts[i] = int64(len(b))
	}
	total := ExclusiveSum(counts, nthreads)
	out := make([]T, total)
	para.ForBlocked(nthreads, len(buffers), func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			copy(out[counts[b]:], buffers[b])
		}
	})
	return out
}
