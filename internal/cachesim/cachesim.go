// Package cachesim models the memory-locality measurements of §5.4 of the
// paper. The paper samples hardware performance counters for data requests
// satisfied from DRAM (Figure 11); portable Go cannot read those counters,
// so we substitute the canonical software locality measure: exact LRU
// reuse (stack) distances over the stream of abstract-location accesses,
// computed with Olken's algorithm (a Fenwick tree over access timestamps).
//
// An access whose reuse distance exceeds the modeled last-level cache
// capacity is counted as a "DRAM request". The quantity this exposes is the
// same one the paper's counters expose: the deterministic scheduler
// separates a task's inspect-phase accesses from its execute-phase accesses
// by an entire round, stretching reuse distances and pushing them past the
// cache capacity.
package cachesim

import (
	"sort"
	"sync/atomic"

	"galois/internal/marks"
)

// DefaultCacheLocations is the default modeled cache capacity in abstract
// locations. Abstract locations (graph nodes, triangles) are tens to
// hundreds of bytes, so 1<<18 locations corresponds to a last-level cache of
// a few tens of MB — the scale of the paper's Xeon E7 machines.
const DefaultCacheLocations = 1 << 18

type access struct {
	seq uint64
	loc *marks.Lockable
}

// Tracer records abstract-location accesses from concurrent workers. A
// global atomic sequence number captures the interleaved access order; each
// worker appends to a private buffer, so tracing adds one atomic increment
// per access.
type Tracer struct {
	seq     atomic.Uint64
	buffers [][]access
}

// NewTracer returns a tracer for nthreads workers.
func NewTracer(nthreads int) *Tracer {
	return &Tracer{buffers: make([][]access, nthreads)}
}

// Touch records that thread tid accessed location loc.
func (t *Tracer) Touch(tid int, loc *marks.Lockable) {
	s := t.seq.Add(1)
	t.buffers[tid] = append(t.buffers[tid], access{seq: s, loc: loc})
}

// Len returns the total number of recorded accesses.
func (t *Tracer) Len() int {
	n := 0
	for _, b := range t.buffers {
		n += len(b)
	}
	return n
}

// Reset discards all recorded accesses.
func (t *Tracer) Reset() {
	for i := range t.buffers {
		t.buffers[i] = t.buffers[i][:0]
	}
	t.seq.Store(0)
}

// Report summarizes the locality of a trace.
type Report struct {
	// Accesses is the total number of location accesses.
	Accesses uint64
	// ColdMisses is the number of first-ever accesses to a location.
	ColdMisses uint64
	// CapacityMisses is the number of re-accesses whose LRU reuse
	// distance was at least the modeled cache capacity.
	CapacityMisses uint64
	// MeanReuseDistance is the mean reuse distance over re-accesses.
	MeanReuseDistance float64
}

// DRAMRequests returns the modeled DRAM traffic: cold plus capacity misses.
// This is the Figure 11 quantity.
func (r Report) DRAMRequests() uint64 { return r.ColdMisses + r.CapacityMisses }

// Analyze computes exact LRU reuse distances for the recorded trace against
// a cache holding cacheLocations abstract locations. If cacheLocations <= 0,
// DefaultCacheLocations is used.
func (t *Tracer) Analyze(cacheLocations int) Report {
	if cacheLocations <= 0 {
		cacheLocations = DefaultCacheLocations
	}
	// Merge the per-thread buffers into global access order.
	var trace []access
	for _, b := range t.buffers {
		trace = append(trace, b...)
	}
	sort.Slice(trace, func(i, j int) bool { return trace[i].seq < trace[j].seq })

	n := len(trace)
	rep := Report{Accesses: uint64(n)}
	if n == 0 {
		return rep
	}
	// Olken's algorithm: Fenwick tree over trace positions; tree[i] == 1
	// iff position i was the most recent access to its location. The
	// reuse distance of an access is the number of ones strictly after
	// the location's previous access position.
	tree := newFenwick(n)
	last := make(map[*marks.Lockable]int, n/4)
	var sumDist float64
	var reuses uint64
	for i, a := range trace {
		if j, seen := last[a.loc]; seen {
			// Distinct locations touched in (j, i).
			dist := tree.sum(i) - tree.sum(j)
			reuses++
			sumDist += float64(dist)
			if dist >= cacheLocations {
				rep.CapacityMisses++
			}
			tree.add(j, -1)
		} else {
			rep.ColdMisses++
		}
		tree.add(i, 1)
		last[a.loc] = i
	}
	if reuses > 0 {
		rep.MeanReuseDistance = sumDist / float64(reuses)
	}
	return rep
}

// fenwick is a standard binary indexed tree over [0, n).
type fenwick struct {
	t []int
}

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

// add adds v at position i.
func (f *fenwick) add(i, v int) {
	for i++; i < len(f.t); i += i & (-i) {
		f.t[i] += v
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}
