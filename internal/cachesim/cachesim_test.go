package cachesim

import (
	"testing"

	"galois/internal/marks"
)

func TestColdMissesOnly(t *testing.T) {
	tr := NewTracer(1)
	locs := make([]marks.Lockable, 100)
	for i := range locs {
		tr.Touch(0, &locs[i])
	}
	rep := tr.Analyze(8)
	if rep.Accesses != 100 || rep.ColdMisses != 100 || rep.CapacityMisses != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.DRAMRequests() != 100 {
		t.Fatalf("dram = %d", rep.DRAMRequests())
	}
}

func TestImmediateReuseHits(t *testing.T) {
	tr := NewTracer(1)
	var l marks.Lockable
	for i := 0; i < 10; i++ {
		tr.Touch(0, &l)
	}
	rep := tr.Analyze(2)
	if rep.ColdMisses != 1 || rep.CapacityMisses != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MeanReuseDistance != 0 {
		t.Fatalf("mean distance = %v, want 0", rep.MeanReuseDistance)
	}
}

func TestCyclicSweepDistances(t *testing.T) {
	// Sweeping k distinct locations twice gives each re-access a reuse
	// distance of exactly k-1.
	const k = 32
	tr := NewTracer(1)
	locs := make([]marks.Lockable, k)
	for pass := 0; pass < 2; pass++ {
		for i := range locs {
			tr.Touch(0, &locs[i])
		}
	}
	// Cache of k locations: distance k-1 < k, so all re-accesses hit.
	rep := tr.Analyze(k)
	if rep.CapacityMisses != 0 {
		t.Fatalf("cache=%d: capacity misses = %d, want 0", k, rep.CapacityMisses)
	}
	if rep.MeanReuseDistance != k-1 {
		t.Fatalf("mean distance = %v, want %d", rep.MeanReuseDistance, k-1)
	}
	// Cache smaller than the sweep: every re-access misses (the classic
	// LRU worst case).
	rep = tr.Analyze(k - 1)
	if rep.CapacityMisses != k {
		t.Fatalf("cache=%d: capacity misses = %d, want %d", k-1, rep.CapacityMisses, k)
	}
}

func TestStackPropertyMonotoneInCacheSize(t *testing.T) {
	// LRU is a stack algorithm: misses are non-increasing in cache size.
	tr := NewTracer(1)
	locs := make([]marks.Lockable, 64)
	// Pseudo-random but deterministic pattern.
	x := uint64(1)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		tr.Touch(0, &locs[x%64])
	}
	prev := ^uint64(0)
	for _, cs := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := tr.Analyze(cs).DRAMRequests()
		if m > prev {
			t.Fatalf("misses increased with cache size at %d: %d > %d", cs, m, prev)
		}
		prev = m
	}
}

func TestMultiThreadMergeOrder(t *testing.T) {
	// Accesses from different threads are merged in global (sequence)
	// order; interleaved touches of one location from two threads are
	// all reuses after the first.
	tr := NewTracer(2)
	var l marks.Lockable
	tr.Touch(0, &l)
	tr.Touch(1, &l)
	tr.Touch(0, &l)
	tr.Touch(1, &l)
	rep := tr.Analyze(4)
	if rep.Accesses != 4 || rep.ColdMisses != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestReset(t *testing.T) {
	tr := NewTracer(1)
	var l marks.Lockable
	tr.Touch(0, &l)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("len after reset = %d", tr.Len())
	}
	rep := tr.Analyze(4)
	if rep.Accesses != 0 {
		t.Fatalf("accesses = %d", rep.Accesses)
	}
}

func TestTemporalSplitIncreasesDistance(t *testing.T) {
	// Model of the paper's §5.4 argument: a task touches its neighborhood
	// twice. If the two touches are adjacent (non-deterministic
	// execution), reuse distances are small; if all first touches happen
	// before all second touches (inspect/execute split), distances grow
	// with the round size and blow past the cache.
	const tasks = 256
	const cache = 16

	adjacent := NewTracer(1)
	locsA := make([]marks.Lockable, tasks)
	for i := range locsA {
		adjacent.Touch(0, &locsA[i])
		adjacent.Touch(0, &locsA[i])
	}
	split := NewTracer(1)
	locsB := make([]marks.Lockable, tasks)
	for i := range locsB {
		split.Touch(0, &locsB[i])
	}
	for i := range locsB {
		split.Touch(0, &locsB[i])
	}
	a := adjacent.Analyze(cache)
	b := split.Analyze(cache)
	if a.CapacityMisses != 0 {
		t.Fatalf("adjacent touches should all hit, got %d misses", a.CapacityMisses)
	}
	if b.CapacityMisses != tasks {
		t.Fatalf("split touches should all miss, got %d", b.CapacityMisses)
	}
}
