package mesh

import "galois/internal/geom"

// Acquirer is the hook through which walk and cavity construction report
// every element they read or will write. The Galois variants pass
// Ctx.Acquire; sequential code passes NoAcquire. Reporting happens before
// the element is used, which is exactly the cautious-task protocol.
type Acquirer func(*Element)

// NoAcquire is the no-op Acquirer for sequential execution.
func NoAcquire(*Element) {}

// maxWalkSteps bounds locate walks; exceeding it indicates a corrupted
// mesh, which is a bug, not an input condition.
const maxWalkSteps = 1 << 24

// Resolve follows forwarding pointers from e (which may be a stale, dead
// element held by a retried task) to a live element, acquiring every
// element on the chain.
func Resolve(e *Element, acq Acquirer) *Element {
	acq(e)
	for e.Dead {
		e = e.Repl
		acq(e)
	}
	return e
}

// Locate walks from start to a triangle containing p, acquiring every
// visited element. It returns onVertex = true if p coincides with an
// existing mesh vertex (the caller should treat the point as a duplicate).
// Locate panics if the walk leaves the triangulated domain: dt meshes are
// bounded by an all-containing super-triangle and dmr points lie inside the
// boundary, so escape indicates a bug or a bad input point.
func Locate(start *Element, p geom.Point, acq Acquirer) (t *Element, onVertex bool) {
	e := Resolve(start, acq)
	for steps := 0; steps < maxWalkSteps; steps++ {
		if e.IsSegment() {
			// Stale-start resolution can land on a segment's
			// forwarding chain; hop to its inner triangle.
			e = e.adj[0]
			acq(e)
			continue
		}
		if e.HasVertex(p) {
			return e, true
		}
		crossed := -1
		for i := 0; i < 3; i++ {
			u, v := e.Edge(i)
			if geom.Orient(u, v, p) < 0 {
				crossed = i
				break
			}
		}
		if crossed == -1 {
			return e, false
		}
		nb := e.adj[crossed]
		if nb == nil || nb.IsSegment() {
			panic("mesh: Locate walked out of the domain")
		}
		acq(nb)
		e = nb
	}
	panic("mesh: Locate did not terminate")
}

// walkToward walks from the triangle e toward target until reaching a
// triangle that contains it. If the walk would cross the domain boundary,
// it returns the boundary segment instead (blocked), signalling that the
// target lies outside — the encroachment case of refinement.
func walkToward(e *Element, target geom.Point, acq Acquirer) (tri, blocked *Element) {
	for steps := 0; steps < maxWalkSteps; steps++ {
		crossed := -1
		for i := 0; i < 3; i++ {
			u, v := e.Edge(i)
			if geom.Orient(u, v, target) < 0 {
				crossed = i
				break
			}
		}
		if crossed == -1 {
			return e, nil
		}
		nb := e.adj[crossed]
		if nb == nil {
			panic("mesh: refinement walk escaped an unbounded mesh")
		}
		acq(nb)
		if nb.IsSegment() {
			return nil, nb
		}
		e = nb
	}
	panic("mesh: walkToward did not terminate")
}
