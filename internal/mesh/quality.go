package mesh

import (
	"fmt"
	"math"
	"strings"

	"galois/internal/geom"
)

// QualityReport summarizes the angle quality of a mesh — the quantity
// Delaunay refinement improves. Angles are in degrees.
type QualityReport struct {
	// Triangles is the number of live triangles measured.
	Triangles int
	// MinAngle is the smallest angle in the mesh.
	MinAngle float64
	// MeanMinAngle is the mean over triangles of each one's smallest
	// angle.
	MeanMinAngle float64
	// Histogram buckets the per-triangle minimum angle into 6-degree
	// bins: [0,6), [6,12), ..., [54,60].
	Histogram [10]int
}

// minAngleDeg returns the triangle's smallest angle in degrees.
func minAngleDeg(e *Element) float64 {
	angle := func(p, q, r geom.Point) float64 {
		ux, uy := q.X-p.X, q.Y-p.Y
		vx, vy := r.X-p.X, r.Y-p.Y
		dot := ux*vx + uy*vy
		nu := math.Sqrt(ux*ux + uy*uy)
		nv := math.Sqrt(vx*vx + vy*vy)
		if nu == 0 || nv == 0 {
			return 0
		}
		c := dot / (nu * nv)
		c = math.Max(-1, math.Min(1, c))
		return math.Acos(c) * 180 / math.Pi
	}
	a1 := angle(e.Pts[0], e.Pts[1], e.Pts[2])
	a2 := angle(e.Pts[1], e.Pts[2], e.Pts[0])
	a3 := angle(e.Pts[2], e.Pts[0], e.Pts[1])
	return math.Min(a1, math.Min(a2, a3))
}

// Quality measures the mesh rooted at root. Triangles touching super
// vertices are excluded when excludeSuper is set.
func Quality(root *Element, excludeSuper bool) QualityReport {
	var rep QualityReport
	rep.MinAngle = 180
	var sum float64
	for _, e := range Triangles(root) {
		if excludeSuper && (IsSuperVertex(e.Pts[0]) || IsSuperVertex(e.Pts[1]) || IsSuperVertex(e.Pts[2])) {
			continue
		}
		m := minAngleDeg(e)
		rep.Triangles++
		sum += m
		if m < rep.MinAngle {
			rep.MinAngle = m
		}
		bin := int(m / 6)
		if bin >= len(rep.Histogram) {
			bin = len(rep.Histogram) - 1
		}
		rep.Histogram[bin]++
	}
	if rep.Triangles > 0 {
		rep.MeanMinAngle = sum / float64(rep.Triangles)
	} else {
		rep.MinAngle = 0
	}
	return rep
}

// String renders the report with a small text histogram.
func (r QualityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d triangles, min angle %.2f°, mean min angle %.2f°\n",
		r.Triangles, r.MinAngle, r.MeanMinAngle)
	maxCount := 1
	for _, c := range r.Histogram {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range r.Histogram {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&sb, "  [%2d°-%2d°) %7d %s\n", i*6, (i+1)*6, c, bar)
	}
	return sb.String()
}
