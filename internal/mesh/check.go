package mesh

import (
	"fmt"
	"sort"

	"galois/internal/geom"
)

// Live enumerates all live elements reachable from root (following
// forwarding pointers first if root is dead): the full mesh, since
// triangulations are edge-connected. Triangles and segments are both
// included.
func Live(root *Element) []*Element {
	for root.Dead {
		root = root.Repl
	}
	seen := map[*Element]bool{root: true}
	queue := []*Element{root}
	var out []*Element
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		out = append(out, e)
		for i := 0; i < e.NEdges(); i++ {
			nb := e.adj[i]
			if nb == nil || seen[nb] {
				continue
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	return out
}

// Triangles filters Live down to triangles.
func Triangles(root *Element) []*Element {
	var out []*Element
	for _, e := range Live(root) {
		if !e.IsSegment() {
			out = append(out, e)
		}
	}
	return out
}

// CheckConforming validates the structural invariants of the mesh rooted at
// root: no dead elements reachable, triangles counterclockwise, adjacency
// symmetric, every interior edge shared by exactly two triangles, every
// segment wired to exactly one triangle.
func CheckConforming(root *Element) error {
	for _, e := range Live(root) {
		if e.Dead {
			return fmt.Errorf("mesh: dead element %v reachable", e)
		}
		if !e.IsSegment() {
			if geom.Orient(e.Pts[0], e.Pts[1], e.Pts[2]) <= 0 {
				return fmt.Errorf("mesh: triangle %v not counterclockwise", e)
			}
		}
		for i := 0; i < e.NEdges(); i++ {
			u, v := e.Edge(i)
			nb := e.adj[i]
			if nb == nil {
				if e.IsSegment() {
					return fmt.Errorf("mesh: segment %v missing inner triangle", e)
				}
				continue // outer hull edge (super-triangle meshes)
			}
			if nb.Dead {
				return fmt.Errorf("mesh: %v adjacent to dead %v", e, nb)
			}
			j := nb.EdgeIndex(u, v)
			if j < 0 {
				return fmt.Errorf("mesh: %v and neighbor %v share no edge (%v,%v)", e, nb, u, v)
			}
			if nb.adj[j] != e {
				return fmt.Errorf("mesh: asymmetric adjacency between %v and %v", e, nb)
			}
		}
	}
	return nil
}

// CheckDelaunay verifies the empty-circumcircle property via the local
// Delaunay criterion: for every interior edge, the vertex opposite the edge
// in each neighbor lies on or outside the circumcircle of the other
// triangle. Local Delaunayhood of every edge implies the global property.
func CheckDelaunay(root *Element) error {
	for _, e := range Triangles(root) {
		for i := 0; i < 3; i++ {
			nb := e.adj[i]
			if nb == nil || nb.IsSegment() {
				continue
			}
			u, v := e.Edge(i)
			opp, ok := oppositeVertex(nb, u, v)
			if !ok {
				return fmt.Errorf("mesh: neighbor %v lost shared edge of %v", nb, e)
			}
			if geom.InCircle(e.Pts[0], e.Pts[1], e.Pts[2], opp) > 0 {
				return fmt.Errorf("mesh: edge (%v,%v) of %v is not locally Delaunay (opp %v)", u, v, e, opp)
			}
		}
	}
	return nil
}

func oppositeVertex(t *Element, u, v geom.Point) (geom.Point, bool) {
	for i := 0; i < 3; i++ {
		if t.Pts[i] != u && t.Pts[i] != v {
			return t.Pts[i], true
		}
	}
	return geom.Point{}, false
}

// CheckNoBad verifies that no live triangle violates the quality bound
// (with the same floor semantics as Element.IsBad).
func CheckNoBad(root *Element, cosBound, minEdge2 float64) error {
	for _, e := range Triangles(root) {
		if e.IsBad(cosBound, minEdge2) {
			return fmt.Errorf("mesh: bad triangle survived refinement: %v", e)
		}
	}
	return nil
}

// Fingerprint returns a canonical hash of the mesh rooted at root: the
// sorted multiset of triangle vertex triples (optionally excluding
// triangles touching super vertices). Identical meshes — regardless of
// construction order or element identity — hash identically.
func Fingerprint(root *Element, excludeSuper bool) uint64 {
	var keys []string
	for _, e := range Triangles(root) {
		if excludeSuper && (IsSuperVertex(e.Pts[0]) || IsSuperVertex(e.Pts[1]) || IsSuperVertex(e.Pts[2])) {
			continue
		}
		keys = append(keys, canonicalTriangle(e))
	}
	sort.Strings(keys)
	var h uint64 = 14695981039346656037
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return h
}

func canonicalTriangle(e *Element) string {
	pts := []geom.Point{e.Pts[0], e.Pts[1], e.Pts[2]}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	return fmt.Sprintf("%x,%x;%x,%x;%x,%x",
		pts[0].X, pts[0].Y, pts[1].X, pts[1].Y, pts[2].X, pts[2].Y)
}

// CountTriangles returns the number of live triangles (excluding super
// triangles if requested).
func CountTriangles(root *Element, excludeSuper bool) int {
	n := 0
	for _, e := range Triangles(root) {
		if excludeSuper && (IsSuperVertex(e.Pts[0]) || IsSuperVertex(e.Pts[1]) || IsSuperVertex(e.Pts[2])) {
			continue
		}
		n++
	}
	return n
}
