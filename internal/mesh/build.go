package mesh

import "galois/internal/geom"

// NewSuperTriangle returns a one-triangle mesh whose triangle comfortably
// contains the unit square (and any point set scaled into it). Incremental
// Delaunay insertion into it yields the Delaunay triangulation of the
// points plus the three far-away super vertices; interior triangles (those
// not touching a super vertex) are reported as the result.
func NewSuperTriangle() *Element {
	const k = 1e4
	return NewTriangle(
		geom.Point{X: -k, Y: -k},
		geom.Point{X: 3 * k, Y: -k},
		geom.Point{X: -k, Y: 3 * k},
	)
}

// SuperVertices returns the vertices of NewSuperTriangle, for filtering.
func SuperVertices() [3]geom.Point {
	t := NewSuperTriangle()
	return t.Pts
}

// IsSuperVertex reports whether p is a vertex of the super-triangle.
func IsSuperVertex(p geom.Point) bool {
	for _, s := range SuperVertices() {
		if p == s {
			return true
		}
	}
	return false
}

// NewUnitSquare returns a unit-square domain triangulated with two
// triangles and guarded by four boundary segments — the starting mesh for
// Delaunay refinement inputs. The returned element is one of the triangles.
func NewUnitSquare() *Element {
	p00 := geom.Point{X: 0, Y: 0}
	p10 := geom.Point{X: 1, Y: 0}
	p11 := geom.Point{X: 1, Y: 1}
	p01 := geom.Point{X: 0, Y: 1}
	t1 := NewTriangle(p00, p10, p11)
	t2 := NewTriangle(p00, p11, p01)
	Wire(t1, t2, p00, p11)
	for _, s := range [][2]geom.Point{{p00, p10}, {p10, p11}} {
		seg := NewSegment(s[0], s[1])
		Wire(t1, seg, s[0], s[1])
	}
	for _, s := range [][2]geom.Point{{p11, p01}, {p01, p00}} {
		seg := NewSegment(s[0], s[1])
		Wire(t2, seg, s[0], s[1])
	}
	return t1
}

// InsertPointSeq inserts p into the mesh sequentially (no synchronization):
// locate from the hint element, build the Bowyer–Watson cavity, and
// retriangulate. It returns a new hint (one of the created triangles) and
// whether the point was inserted (false for duplicates of existing
// vertices). Used to build inputs and as the dt/dmr sequential baseline
// building block.
func InsertPointSeq(hint *Element, p geom.Point) (newHint *Element, inserted bool) {
	t, onVertex := Locate(hint, p, NoAcquire)
	if onVertex {
		return t, false
	}
	cav := BuildInsertion(t, p, NoAcquire)
	created := cav.Retriangulate(nil)
	return created[0], true
}

// BuildDelaunaySeq triangulates pts (sequentially, in the given order,
// which callers typically BRIO/Hilbert order first) into the mesh rooted at
// root. It returns a live element of the final mesh and the number of
// points actually inserted.
func BuildDelaunaySeq(root *Element, pts []geom.Point) (*Element, int) {
	hint := root
	inserted := 0
	for _, p := range pts {
		var ok bool
		hint, ok = InsertPointSeq(hint, p)
		if ok {
			inserted++
		}
	}
	return hint, inserted
}
