// Package mesh implements the triangle-mesh substrate for the Delaunay
// triangulation (dt) and Delaunay mesh refinement (dmr) benchmarks:
// elements (triangles and boundary segments) with edge adjacency, locate
// walks with forwarding pointers, Bowyer–Watson insertion cavities,
// refinement cavities with segment encroachment, retriangulation, and
// structural/Delaunay validation.
//
// Every element embeds a mark word (marks.Lockable); elements are the
// abstract locations of the dt/dmr Galois programs. All mutation happens in
// Retriangulate, which tasks call from their commit phase while holding
// (under either scheduler) every element it touches: the cavity members and
// the frontier elements it rewires.
package mesh

import (
	"fmt"

	"galois/internal/geom"
	"galois/internal/marks"
)

// Element is a mesh element: a triangle (three points) or a boundary
// segment (two points). Segments sit on the domain boundary; a triangle's
// neighbor across a boundary edge is the segment guarding that edge.
type Element struct {
	marks.Lockable
	// Pts are the element's corners; triangles are counterclockwise.
	// Segments use Pts[0], Pts[1].
	Pts [3]geom.Point
	// adj[i] is the neighbor across edge i = (Pts[i], Pts[(i+1)%dim]):
	// a triangle, a segment (boundary), or nil (outer hull of an
	// unbounded triangulation). Segments use adj[0] = their inner
	// triangle.
	adj [3]*Element
	dim int8
	// Dead marks elements removed from the mesh.
	Dead bool
	// Repl forwards from a dead element to one of the elements created
	// by the cavity that killed it, so walks starting at stale elements
	// reach the live mesh. Set exactly once, at death.
	Repl *Element
	// Assoc holds indices of not-yet-inserted points located inside this
	// triangle (used by dt's point-location-by-association scheme).
	Assoc []int32
}

// NewTriangle returns a live triangle over (a, b, c), normalized to
// counterclockwise orientation. It panics on degenerate (collinear) input.
func NewTriangle(a, b, c geom.Point) *Element {
	switch geom.Orient(a, b, c) {
	case 1:
	case -1:
		b, c = c, b
	default:
		panic(fmt.Sprintf("mesh: degenerate triangle (%v %v %v)", a, b, c))
	}
	return &Element{Pts: [3]geom.Point{a, b, c}, dim: 3}
}

// NewSegment returns a boundary segment over (a, b).
func NewSegment(a, b geom.Point) *Element {
	return &Element{Pts: [3]geom.Point{a, b, {}}, dim: 2}
}

// IsSegment reports whether e is a boundary segment.
func (e *Element) IsSegment() bool { return e.dim == 2 }

// Dim returns the number of points (3 for triangles, 2 for segments).
func (e *Element) Dim() int { return int(e.dim) }

// Edge returns the endpoints of edge i.
func (e *Element) Edge(i int) (geom.Point, geom.Point) {
	return e.Pts[i], e.Pts[(i+1)%int(e.dim)]
}

// NEdges returns the number of edges (3 for triangles, 1 for segments).
func (e *Element) NEdges() int {
	if e.dim == 2 {
		return 1
	}
	return 3
}

// Adj returns the neighbor across edge i.
func (e *Element) Adj(i int) *Element { return e.adj[i] }

// SetAdj sets the neighbor across edge i.
func (e *Element) SetAdj(i int, nb *Element) { e.adj[i] = nb }

// EdgeIndex returns the index of the (undirected) edge {u, v}, or -1.
func (e *Element) EdgeIndex(u, v geom.Point) int {
	for i := 0; i < e.NEdges(); i++ {
		a, b := e.Edge(i)
		if (a == u && b == v) || (a == v && b == u) {
			return i
		}
	}
	return -1
}

// HasVertex reports whether p is a corner of e.
func (e *Element) HasVertex(p geom.Point) bool {
	for i := 0; i < int(e.dim); i++ {
		if e.Pts[i] == p {
			return true
		}
	}
	return false
}

// Contains reports whether the triangle contains p (boundary inclusive).
func (e *Element) Contains(p geom.Point) bool {
	for i := 0; i < 3; i++ {
		u, v := e.Edge(i)
		if geom.Orient(u, v, p) < 0 {
			return false
		}
	}
	return true
}

// InCircumcircle reports whether p lies strictly inside the triangle's
// circumcircle.
func (e *Element) InCircumcircle(p geom.Point) bool {
	return geom.InCircle(e.Pts[0], e.Pts[1], e.Pts[2], p) > 0
}

// Circumcenter returns the triangle's circumcenter.
func (e *Element) Circumcenter() geom.Point {
	return geom.Circumcenter(e.Pts[0], e.Pts[1], e.Pts[2])
}

// IsBad reports whether the triangle's smallest angle is below the quality
// bound (cosBound = cosine of the bound angle). Triangles whose shortest
// edge is already at or below the squared length floor minEdge2 are never
// bad: the floor is a safety valve against unbounded refinement near the
// quality limit of Ruppert-style algorithms.
func (e *Element) IsBad(cosBound, minEdge2 float64) bool {
	if e.dim != 3 {
		return false
	}
	if minEdge2 > 0 {
		short := geom.Dist2(e.Pts[0], e.Pts[1])
		if d := geom.Dist2(e.Pts[1], e.Pts[2]); d < short {
			short = d
		}
		if d := geom.Dist2(e.Pts[2], e.Pts[0]); d < short {
			short = d
		}
		if short <= minEdge2 {
			return false
		}
	}
	return geom.MinAngleBelow(e.Pts[0], e.Pts[1], e.Pts[2], cosBound)
}

// String renders the element compactly.
func (e *Element) String() string {
	kind := "tri"
	if e.IsSegment() {
		kind = "seg"
	}
	state := ""
	if e.Dead {
		state = " dead"
	}
	if e.IsSegment() {
		return fmt.Sprintf("%s(%v %v)%s", kind, e.Pts[0], e.Pts[1], state)
	}
	return fmt.Sprintf("%s(%v %v %v)%s", kind, e.Pts[0], e.Pts[1], e.Pts[2], state)
}

// Wire links t and nb across the undirected edge {u, v}, updating both
// sides. Either may be a segment (whose triangle side is adj[0]).
func Wire(t, nb *Element, u, v geom.Point) {
	if t != nil {
		i := t.EdgeIndex(u, v)
		if i < 0 {
			panic("mesh: Wire: edge not found on t")
		}
		t.adj[i] = nb
	}
	if nb != nil {
		i := nb.EdgeIndex(u, v)
		if i < 0 {
			panic("mesh: Wire: edge not found on nb")
		}
		nb.adj[i] = t
	}
}
