package mesh

import (
	"fmt"

	"galois/internal/geom"
)

// frontEdge is one edge of the cavity boundary: the new point is joined to
// (u, v), and the resulting triangle is wired to outside (a surviving
// triangle, a boundary segment, or nil on the outer hull).
type frontEdge struct {
	u, v    geom.Point
	outside *Element
}

// Cavity describes one mesh update: the elements to remove (Members), the
// boundary to re-join (frontier) and the point to insert (Center). For a
// boundary-segment split, SplitSeg is the segment being replaced and Center
// its midpoint.
//
// Building a cavity only reads the mesh; Retriangulate performs all writes.
// This split is what lets the same code run speculatively (reads acquire
// locks as they happen) and deterministically (reads mark the interference
// graph in the inspect phase, writes run in the commit phase).
type Cavity struct {
	Center   geom.Point
	SplitSeg *Element
	Members  []*Element
	frontier []frontEdge
}

func (c *Cavity) hasMember(e *Element) bool {
	for _, m := range c.Members {
		if m == e {
			return true
		}
	}
	return false
}

// expand grows the cavity from seed to the full conflict region of
// c.Center: the connected set of triangles whose circumcircle strictly
// contains the center (which is exactly the Bowyer–Watson cavity, and is
// connected in a Delaunay mesh). Frontier elements are acquired because
// Retriangulate rewires them.
//
// If stopOnEncroach is true and the region's boundary reaches a domain
// segment whose diametral circle contains the center, expansion stops and
// the offending segment is returned — Ruppert's rule that an encroaching
// circumcenter must not be inserted.
func (c *Cavity) expand(seed *Element, acq Acquirer, stopOnEncroach bool) (encroached *Element) {
	c.Members = append(c.Members, seed)
	for scan := len(c.Members) - 1; scan < len(c.Members); scan++ {
		e := c.Members[scan]
		for i := 0; i < 3; i++ {
			u, v := e.Edge(i)
			nb := e.adj[i]
			if nb == nil {
				c.frontier = append(c.frontier, frontEdge{u: u, v: v})
				continue
			}
			acq(nb)
			if nb.IsSegment() {
				if stopOnEncroach && nb != c.SplitSeg &&
					geom.InDiametralCircle(nb.Pts[0], nb.Pts[1], c.Center) {
					return nb
				}
				c.frontier = append(c.frontier, frontEdge{u: u, v: v, outside: nb})
				continue
			}
			if c.hasMember(nb) {
				continue
			}
			if nb.InCircumcircle(c.Center) {
				c.Members = append(c.Members, nb)
				continue
			}
			c.frontier = append(c.frontier, frontEdge{u: u, v: v, outside: nb})
		}
	}
	return nil
}

// BuildInsertion builds the Bowyer–Watson insertion cavity for point p,
// whose containing triangle is t (from Locate). Used by Delaunay
// triangulation, where points lie strictly inside the (super-)triangulated
// domain.
func BuildInsertion(t *Element, p geom.Point, acq Acquirer) *Cavity {
	c := &Cavity{Center: p}
	c.expand(t, acq, false)
	return c
}

// BuildSegmentSplit builds the cavity that replaces boundary segment s with
// two half-segments and inserts its midpoint. The caller must have acquired
// s (it arrives through cavity expansion or a refinement walk, which do).
func BuildSegmentSplit(s *Element, acq Acquirer) *Cavity {
	mid := geom.Midpoint(s.Pts[0], s.Pts[1])
	c := &Cavity{Center: mid, SplitSeg: s}
	c.Members = append(c.Members, s)
	inner := s.adj[0]
	acq(inner)
	c.expand(inner, acq, false)
	return c
}

// BuildRefinement builds the cavity for fixing the bad triangle bad: insert
// its circumcenter, unless the circumcenter lies outside the domain or
// encroaches a boundary segment, in which case the offending segment is
// split instead (Ruppert/Chew, as in the Lonestar dmr code). The caller
// must have acquired bad and verified it is alive.
func BuildRefinement(bad *Element, acq Acquirer) *Cavity {
	center := bad.Circumcenter()
	tri, blocked := walkToward(bad, center, acq)
	if blocked != nil {
		// The center lies beyond this boundary segment; split it.
		return BuildSegmentSplit(blocked, acq)
	}
	c := &Cavity{Center: center}
	if encroached := c.expand(tri, acq, true); encroached != nil {
		return BuildSegmentSplit(encroached, acq)
	}
	return c
}

// Retriangulate applies the cavity to the mesh: kills the members, creates
// the star of Center over the frontier (plus split segments), rewires
// adjacency on both sides, and — when pts is non-nil — redistributes the
// members' associated point indices into the new triangles (skipping any
// index whose point equals the inserted center). It returns the created
// elements, triangles first.
//
// The caller must hold every member and frontier element; under the
// deterministic scheduler that is guaranteed by having built the cavity
// through the inspect phase's Acquirer.
func (c *Cavity) Retriangulate(pts []geom.Point) (created []*Element) {
	// Map star edges (shared between consecutive new triangles) for
	// internal wiring: key is the undirected pair, value the first new
	// triangle seen with that edge.
	type pair struct{ a, b geom.Point }
	norm := func(a, b geom.Point) pair {
		if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
			a, b = b, a
		}
		return pair{a, b}
	}
	half := make(map[pair]*Element, 2*len(c.frontier))
	wireStar := func(t *Element, a, b geom.Point) {
		k := norm(a, b)
		if other, ok := half[k]; ok {
			Wire(t, other, a, b)
			delete(half, k)
		} else {
			half[k] = t
		}
	}

	var splitU, splitV geom.Point
	sawSplitEdge := false
	for _, fe := range c.frontier {
		if geom.Orient(fe.u, fe.v, c.Center) <= 0 {
			// Degenerate star edge: the center lies on this
			// frontier edge. Legal only for the segment being
			// split (its midpoint is on it by construction).
			if c.SplitSeg == nil || fe.outside != c.SplitSeg {
				panic(fmt.Sprintf("mesh: center %v collinear with frontier edge (%v,%v)",
					c.Center, fe.u, fe.v))
			}
			splitU, splitV = fe.u, fe.v
			sawSplitEdge = true
			continue
		}
		t := NewTriangle(fe.u, fe.v, c.Center)
		created = append(created, t)
		// Outer side.
		if fe.outside != nil {
			Wire(t, fe.outside, fe.u, fe.v)
		}
		// Inner (star) sides.
		wireStar(t, fe.v, c.Center)
		wireStar(t, c.Center, fe.u)
	}
	if c.SplitSeg != nil {
		if !sawSplitEdge {
			panic("mesh: segment split cavity lost its segment edge")
		}
		s1 := NewSegment(splitU, c.Center)
		s2 := NewSegment(c.Center, splitV)
		// Wire each half-segment to the unique star triangle sharing
		// its edge (left unpaired in the half map).
		for _, s := range []*Element{s1, s2} {
			k := norm(s.Pts[0], s.Pts[1])
			t, ok := half[k]
			if !ok {
				panic("mesh: no star triangle for split segment half")
			}
			Wire(t, s, s.Pts[0], s.Pts[1])
			delete(half, k)
		}
		created = append(created, s1, s2)
	}
	if len(created) == 0 {
		panic("mesh: retriangulation created no elements")
	}

	// Kill members and set forwarding pointers.
	repl := created[0]
	for _, m := range c.Members {
		m.Dead = true
		m.Repl = repl
	}

	// Redistribute associated points among the new triangles.
	if pts != nil {
		for _, m := range c.Members {
			for _, idx := range m.Assoc {
				p := pts[idx]
				if p == c.Center {
					continue // now inserted
				}
				placed := false
				for _, t := range created {
					if !t.IsSegment() && t.Contains(p) {
						t.Assoc = append(t.Assoc, idx)
						placed = true
						break
					}
				}
				if !placed {
					panic("mesh: associated point fell outside its cavity")
				}
			}
			m.Assoc = nil
		}
	}
	return created
}
