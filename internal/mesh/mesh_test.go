package mesh

import (
	"testing"

	"galois/internal/geom"
)

func TestNewTriangleNormalizesCCW(t *testing.T) {
	a, b, c := geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1}
	for _, tri := range []*Element{NewTriangle(a, b, c), NewTriangle(a, c, b)} {
		if geom.Orient(tri.Pts[0], tri.Pts[1], tri.Pts[2]) != 1 {
			t.Fatal("triangle not CCW")
		}
	}
}

func TestNewTrianglePanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTriangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 2})
}

func TestEdgeIndexAndWire(t *testing.T) {
	a, b, c, d := geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1}, geom.Point{X: 1, Y: 1}
	t1 := NewTriangle(a, b, c)
	t2 := NewTriangle(b, d, c)
	Wire(t1, t2, b, c)
	i := t1.EdgeIndex(b, c)
	j := t2.EdgeIndex(c, b)
	if i < 0 || j < 0 {
		t.Fatal("edge not found")
	}
	if t1.Adj(i) != t2 || t2.Adj(j) != t1 {
		t.Fatal("wire did not link both sides")
	}
	if t1.EdgeIndex(a, d) != -1 {
		t.Fatal("nonexistent edge found")
	}
}

func TestContains(t *testing.T) {
	tri := NewTriangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}, geom.Point{X: 0, Y: 2})
	if !tri.Contains(geom.Point{X: 0.5, Y: 0.5}) {
		t.Fatal("interior point not contained")
	}
	if !tri.Contains(geom.Point{X: 1, Y: 0}) {
		t.Fatal("boundary point not contained")
	}
	if tri.Contains(geom.Point{X: 2, Y: 2}) {
		t.Fatal("exterior point contained")
	}
}

func TestUnitSquareConforming(t *testing.T) {
	root := NewUnitSquare()
	if err := CheckConforming(root); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(root); err != nil {
		t.Fatal(err)
	}
	live := Live(root)
	nseg, ntri := 0, 0
	for _, e := range live {
		if e.IsSegment() {
			nseg++
		} else {
			ntri++
		}
	}
	if ntri != 2 || nseg != 4 {
		t.Fatalf("unit square has %d triangles, %d segments", ntri, nseg)
	}
}

func TestInsertSinglePoint(t *testing.T) {
	root := NewSuperTriangle()
	hint, ok := InsertPointSeq(root, geom.Point{X: 0.5, Y: 0.5})
	if !ok {
		t.Fatal("insertion failed")
	}
	if err := CheckConforming(hint); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(hint); err != nil {
		t.Fatal(err)
	}
	if got := len(Triangles(hint)); got != 3 {
		t.Fatalf("got %d triangles, want 3", got)
	}
}

func TestInsertDuplicateIsNoop(t *testing.T) {
	root := NewSuperTriangle()
	hint, _ := InsertPointSeq(root, geom.Point{X: 0.5, Y: 0.5})
	hint2, ok := InsertPointSeq(hint, geom.Point{X: 0.5, Y: 0.5})
	if ok {
		t.Fatal("duplicate insertion succeeded")
	}
	if got := len(Triangles(hint2)); got != 3 {
		t.Fatalf("duplicate changed the mesh: %d triangles", got)
	}
}

func TestInsertPointOnEdge(t *testing.T) {
	root := NewSuperTriangle()
	hint, _ := InsertPointSeq(root, geom.Point{X: 0.25, Y: 0.25})
	hint, _ = InsertPointSeq(hint, geom.Point{X: 0.75, Y: 0.75})
	// A point on the shared edge between two triangles.
	hint, ok := InsertPointSeq(hint, geom.Point{X: 0.5, Y: 0.5})
	if !ok {
		t.Fatal("on-edge insertion failed")
	}
	if err := CheckConforming(hint); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(hint); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDelaunaySeqRandom(t *testing.T) {
	pts := geom.UniformPoints(500, 11)
	root, inserted := BuildDelaunaySeq(NewSuperTriangle(), pts)
	if inserted != 500 {
		t.Fatalf("inserted %d of 500", inserted)
	}
	if err := CheckConforming(root); err != nil {
		t.Fatal(err)
	}
	if err := CheckDelaunay(root); err != nil {
		t.Fatal(err)
	}
	// Euler: a triangulation of n interior points inside a triangle has
	// 2n+1 triangles; with far-away super vertices every input point is
	// interior.
	if got := CountTriangles(root, false); got != 2*500+1 {
		t.Fatalf("triangle count = %d, want %d", got, 2*500+1)
	}
}

func TestDelaunayOrderIndependence(t *testing.T) {
	// The Delaunay triangulation of points in general position is unique:
	// different insertion orders must produce identical meshes.
	pts := geom.UniformPoints(300, 21)
	rootA, _ := BuildDelaunaySeq(NewSuperTriangle(), pts)
	rev := make([]geom.Point, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	rootB, _ := BuildDelaunaySeq(NewSuperTriangle(), rev)
	if Fingerprint(rootA, true) != Fingerprint(rootB, true) {
		t.Fatal("insertion order changed the Delaunay triangulation")
	}
}

func TestBRIOOrderBuildsSameMesh(t *testing.T) {
	pts := geom.UniformPoints(400, 31)
	rootA, _ := BuildDelaunaySeq(NewSuperTriangle(), pts)
	rootB, _ := BuildDelaunaySeq(NewSuperTriangle(), geom.BRIO(pts, 7))
	if Fingerprint(rootA, true) != Fingerprint(rootB, true) {
		t.Fatal("BRIO order changed the triangulation")
	}
}

func TestLocateFindsContainingTriangle(t *testing.T) {
	pts := geom.UniformPoints(200, 41)
	root, _ := BuildDelaunaySeq(NewSuperTriangle(), pts)
	probe := geom.UniformPoints(100, 42)
	for _, p := range probe {
		tri, onVertex := Locate(root, p, NoAcquire)
		if onVertex {
			continue
		}
		if !tri.Contains(p) {
			t.Fatalf("Locate returned non-containing triangle for %v", p)
		}
	}
}

func TestLocateOnVertex(t *testing.T) {
	pts := geom.UniformPoints(50, 43)
	root, _ := BuildDelaunaySeq(NewSuperTriangle(), pts)
	for _, p := range pts[:10] {
		_, onVertex := Locate(root, p, NoAcquire)
		if !onVertex {
			t.Fatalf("existing vertex %v not detected", p)
		}
	}
}

func TestResolveFollowsForwarding(t *testing.T) {
	root := NewSuperTriangle()
	hint, _ := InsertPointSeq(root, geom.Point{X: 0.3, Y: 0.3})
	if !root.Dead {
		t.Fatal("original super triangle should be dead")
	}
	var acquired []*Element
	live := Resolve(root, func(e *Element) { acquired = append(acquired, e) })
	if live.Dead {
		t.Fatal("Resolve returned a dead element")
	}
	if len(acquired) < 2 {
		t.Fatal("Resolve did not acquire the chain")
	}
	_ = hint
}

func TestSegmentSplit(t *testing.T) {
	root := NewUnitSquare()
	// Find a boundary segment.
	var seg *Element
	for _, e := range Live(root) {
		if e.IsSegment() {
			seg = e
			break
		}
	}
	cav := BuildSegmentSplit(seg, NoAcquire)
	created := cav.Retriangulate(nil)
	nseg := 0
	for _, e := range created {
		if e.IsSegment() {
			nseg++
		}
	}
	if nseg != 2 {
		t.Fatalf("split created %d segments, want 2", nseg)
	}
	if !seg.Dead {
		t.Fatal("split segment not killed")
	}
	liveRoot := created[0]
	if err := CheckConforming(liveRoot); err != nil {
		t.Fatal(err)
	}
	// Still 4 sides' worth of segments plus one extra.
	nsegLive := 0
	for _, e := range Live(liveRoot) {
		if e.IsSegment() {
			nsegLive++
		}
	}
	if nsegLive != 5 {
		t.Fatalf("live segments = %d, want 5", nsegLive)
	}
}

func TestRefinementCavityOnBadTriangle(t *testing.T) {
	// Build a small square mesh with one interior point near a corner,
	// producing sliver triangles, then refine one and check the mesh
	// stays conforming.
	root := NewUnitSquare()
	hint, ok := InsertPointSeq(root, geom.Point{X: 0.5, Y: 0.02})
	if !ok {
		t.Fatal("seed insertion failed")
	}
	var bad *Element
	for _, e := range Triangles(hint) {
		if e.IsBad(geom.Cos30, 0) {
			bad = e
			break
		}
	}
	if bad == nil {
		t.Skip("no bad triangle in this configuration")
	}
	cav := BuildRefinement(bad, NoAcquire)
	if cav == nil {
		t.Fatal("refinement cavity not built")
	}
	created := cav.Retriangulate(nil)
	if err := CheckConforming(created[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAssocRedistribution(t *testing.T) {
	pts := []geom.Point{
		{X: 0.5, Y: 0.5}, {X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.1}, {X: 0.2, Y: 0.8},
	}
	root := NewSuperTriangle()
	root.Assoc = []int32{0, 1, 2, 3}
	tri, onV := Locate(root, pts[0], NoAcquire)
	if onV {
		t.Fatal("unexpected vertex hit")
	}
	cav := BuildInsertion(tri, pts[0], NoAcquire)
	created := cav.Retriangulate(pts)
	total := 0
	for _, e := range created {
		if e.IsSegment() {
			continue
		}
		for _, idx := range e.Assoc {
			if idx == 0 {
				t.Fatal("inserted point still associated")
			}
			if !e.Contains(pts[idx]) {
				t.Fatalf("point %d associated with non-containing triangle", idx)
			}
			total++
		}
	}
	if total != 3 {
		t.Fatalf("redistributed %d points, want 3", total)
	}
	if root.Assoc != nil {
		t.Fatal("dead member kept its association list")
	}
}

func TestFingerprintDetectsDifference(t *testing.T) {
	ptsA := geom.UniformPoints(50, 1)
	ptsB := geom.UniformPoints(50, 2)
	rootA, _ := BuildDelaunaySeq(NewSuperTriangle(), ptsA)
	rootB, _ := BuildDelaunaySeq(NewSuperTriangle(), ptsB)
	if Fingerprint(rootA, true) == Fingerprint(rootB, true) {
		t.Fatal("different point sets produced identical fingerprints")
	}
}

func TestIsBadFloor(t *testing.T) {
	// A sliver below the edge-length floor is not bad.
	tiny := NewTriangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 1e-4, Y: 0}, geom.Point{X: 5e-5, Y: 1e-6})
	if !tiny.IsBad(geom.Cos30, 0) {
		t.Fatal("sliver should be bad with no floor")
	}
	if tiny.IsBad(geom.Cos30, 1e-6) {
		t.Fatal("sliver below floor should not be bad")
	}
}

func TestQualityReport(t *testing.T) {
	pts := geom.UniformPoints(200, 51)
	root, _ := BuildDelaunaySeq(NewSuperTriangle(), pts)
	rep := Quality(root, true)
	if rep.Triangles == 0 {
		t.Fatal("no triangles measured")
	}
	if rep.MinAngle <= 0 || rep.MinAngle > 60 {
		t.Fatalf("min angle %v out of range", rep.MinAngle)
	}
	if rep.MeanMinAngle < rep.MinAngle {
		t.Fatal("mean below min")
	}
	total := 0
	for _, c := range rep.Histogram {
		total += c
	}
	if total != rep.Triangles {
		t.Fatalf("histogram sums to %d, want %d", total, rep.Triangles)
	}
	if rep.String() == "" {
		t.Fatal("empty render")
	}
}

func TestQualityEquilateral(t *testing.T) {
	tr := NewTriangle(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0},
		geom.Point{X: 0.5, Y: 0.8660254037844386})
	rep := Quality(tr, false)
	if rep.Triangles != 1 {
		t.Fatalf("triangles = %d", rep.Triangles)
	}
	if rep.MinAngle < 59.9 || rep.MinAngle > 60.1 {
		t.Fatalf("equilateral min angle = %v", rep.MinAngle)
	}
}
