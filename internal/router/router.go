package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"galois/internal/rescache"
	"galois/internal/serve"
)

// BackendSpec configures one backend of the routed set.
type BackendSpec struct {
	// URL is the backend's base URL ("http://host:port" or "host:port").
	URL string
	// Weight scales the backend's share under the weighted policy
	// (default 1).
	Weight int
}

// Config sizes a Router. Zero values select the documented defaults.
type Config struct {
	// Backends is the routed set, in a fixed order that every policy
	// tie-break refers to. At least one is required.
	Backends []BackendSpec
	// Policy names the routing policy: round-robin (default),
	// least-loaded, consistent-hash or weighted.
	Policy string
	// ProbeInterval is the health-probe period. 0 disables the background
	// prober — probes then only happen via ProbeOnce (tests) and passive
	// dial-error observation.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip. Default 2s.
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure count that ejects a backend.
	// Default 3.
	EjectAfter int
	// RecoverAfter is the cooldown before an ejected backend re-enters
	// half-open and receives a recovery probe. Default 5s.
	RecoverAfter time.Duration
	// Retries bounds extra attempts after a dial-phase connection error
	// (the one failure class where the request provably never reached
	// admission). Default 2.
	Retries int
	// RetryBackoff is the base delay between retry attempts, doubled per
	// attempt. Default 25ms.
	RetryBackoff time.Duration
	// MaxBody bounds request bodies (they are buffered for retry
	// replay). Default 1 MiB.
	MaxBody int64
	// Client is the proxy transport. Default: http.Client with a
	// transport sized for many concurrent backends connections.
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 5 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
		c.Client = &http.Client{Transport: tr}
	}
}

// Router is the reverse-proxy tier over a set of galoisd backends. Create
// with New, expose via Handler, stop with Close (or Shutdown for a
// draining stop).
type Router struct {
	cfg      Config
	backends []*Backend
	policy   Policy
	// verifyRR routes POST /verify and GET /kinds: verification
	// deliberately ignores spec affinity and walks the healthy set
	// round-robin, so audits continuously replay receipts on nodes that
	// did not produce them — the portability property exercised on every
	// verify.
	verifyRR roundRobin
	mux      *http.ServeMux

	// sessions maps session id -> owning backend. Sticky by construction:
	// the owner holds the pinned state and hash chain, so routing by
	// anything but this map would be wrong, not just slow.
	sessionsMu sync.RWMutex
	sessions   map[string]*Backend

	// Router-level counters, exported at GET /metrics.
	requests     atomic.Int64 // routed requests accepted
	proxyErrors  atomic.Int64 // attempts that ended in a transport error
	retries      atomic.Int64 // dial-error retries performed
	noBackend    atomic.Int64 // 503s for an empty healthy set
	backpressure atomic.Int64 // 429s propagated from backends

	draining   atomic.Bool
	proberStop chan struct{}
	proberDone sync.WaitGroup
}

// New builds a router over cfg.Backends and starts its health prober
// (when ProbeInterval > 0). All backends start healthy; the first probe
// cycle or dial error corrects that.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	cfg.fillDefaults()
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:      cfg,
		policy:   pol,
		sessions: make(map[string]*Backend),
	}
	for i, bs := range cfg.Backends {
		url := bs.URL
		if url == "" {
			return nil, fmt.Errorf("router: backend %d has no URL", i)
		}
		if !hasScheme(url) {
			url = "http://" + url
		}
		rt.backends = append(rt.backends, newBackend(url, bs.Weight, i))
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /jobs", rt.handleJobs)
	rt.mux.HandleFunc("POST /verify", rt.handleVerify)
	rt.mux.HandleFunc("GET /kinds", rt.handleKinds)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("POST /sessions", rt.handleSessionCreate)
	rt.mux.HandleFunc("GET /sessions/{id}", rt.handleSessionRouted)
	rt.mux.HandleFunc("DELETE /sessions/{id}", rt.handleSessionRouted)
	rt.mux.HandleFunc("POST /sessions/{id}/batches", rt.handleSessionRouted)
	rt.mux.HandleFunc("POST /sessions/{id}/verify", rt.handleSessionRouted)
	if cfg.ProbeInterval > 0 {
		rt.proberStop = make(chan struct{})
		rt.proberDone.Add(1)
		//detlint:ignore goroutineorder health prober: probe timing is wall-clock policy by design and only moves backends between health states; job results are computed on the backends and are scheduling-independent
		go rt.prober()
	}
	return rt, nil
}

func hasScheme(url string) bool {
	for i := 0; i < len(url); i++ {
		switch url[i] {
		case ':':
			return i+2 < len(url) && url[i+1] == '/' && url[i+2] == '/'
		case '/', '.':
			return false
		}
	}
	return false
}

// Handler returns the router's HTTP interface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Backends returns the configured backend set (fixed order).
func (rt *Router) Backends() []*Backend { return rt.backends }

// Policy returns the active routing policy's name.
func (rt *Router) Policy() string { return rt.policy.Name() }

// SessionsTracked returns the number of session ids with a recorded
// owner.
func (rt *Router) SessionsTracked() int {
	rt.sessionsMu.RLock()
	defer rt.sessionsMu.RUnlock()
	return len(rt.sessions)
}

// Close stops the health prober. It does not wait for in-flight proxied
// requests; use Shutdown for a draining stop.
func (rt *Router) Close() {
	if rt.proberStop != nil {
		select {
		case <-rt.proberStop:
		default:
			close(rt.proberStop)
		}
		rt.proberDone.Wait()
	}
}

// Shutdown flips the router to draining — every new request is rejected
// with 503 — stops the prober, and waits for in-flight proxied requests
// to finish (or ctx to expire). The backends drain their own admitted
// work; the router only has to stop feeding them.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	rt.Close()
	for {
		total := int64(0)
		for _, b := range rt.backends {
			total += b.InFlight()
		}
		if total == 0 {
			return nil
		}
		//detlint:ignore goroutineorder shutdown poll: whether ctx expiry or the tick wins changes only when draining stops, never any committed output
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Draining reports whether Shutdown has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// healthyExcept returns the healthy backends not in skip, in configured
// order.
func (rt *Router) healthyExcept(skip map[*Backend]bool) []*Backend {
	out := make([]*Backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		if b.State() == Healthy && !skip[b] {
			out = append(out, b)
		}
	}
	return out
}

// isDialError reports whether err happened in the connect phase, before
// any byte of the request reached the backend. Only these failures are
// safe to retry elsewhere: everything later — reset mid-request, timeout
// awaiting the response — may have been admitted, and galoisd admission
// is a promise to execute, so a retry could run Exclusive or session work
// twice.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// send proxies one buffered request to b. The caller owns in-flight
// bookkeeping and response relaying.
func (rt *Router) send(r *http.Request, b *Backend, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.URL+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	} else if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		b.errors.Add(1)
		rt.proxyErrors.Add(1)
		return nil, err
	}
	b.markSuccess()
	return resp, nil
}

// relay copies a backend response to the client, tagging which backend
// served it (X-Galois-Backend) — the header the cross-node verification
// demo and tests key off.
func (rt *Router) relay(w http.ResponseWriter, b *Backend, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Galois-Backend", b.URL)
	if resp.StatusCode == http.StatusTooManyRequests {
		rt.backpressure.Add(1)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody buffers the request body for retry replay, bounded by MaxBody.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return nil, false
	}
	return body, true
}

// routeForward is the common path of every policy-routed endpoint: pick a
// healthy backend, forward, and — only on a dial-phase connection error —
// back off and retry on another. Responses (any status) pass through
// unchanged apart from the X-Galois-Backend tag; 429s additionally count
// as propagated backpressure.
func (rt *Router) routeForward(w http.ResponseWriter, r *http.Request, body []byte, key uint64, hasKey bool, pick func([]*Backend) *Backend) {
	rt.requests.Add(1)
	tried := make(map[*Backend]bool)
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	var lastB *Backend
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		cands := rt.healthyExcept(tried)
		if len(cands) == 0 {
			break
		}
		var b *Backend
		if pick != nil {
			b = pick(cands)
		} else {
			b = rt.policy.Pick(cands, key, hasKey)
		}
		b.requests.Add(1)
		b.inflight.Add(1)
		resp, err := rt.send(r, b, body)
		if err == nil {
			rt.relay(w, b, resp)
			b.inflight.Add(-1)
			return
		}
		b.inflight.Add(-1)
		lastErr, lastB = err, b
		if !isDialError(err) || r.Context().Err() != nil {
			// The request may have reached admission: surface the failure
			// instead of risking a duplicate execution.
			rt.writeError(w, http.StatusBadGateway, "backend %s: %v", b.URL, err)
			return
		}
		// Connect never happened: mark the failure (repeats eject), skip
		// this backend and retry after a backoff.
		b.markFailure(rt.cfg.EjectAfter, time.Now().UnixNano())
		tried[b] = true
		if attempt < rt.cfg.Retries {
			b.retries.Add(1)
			rt.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	if lastErr != nil {
		rt.writeError(w, http.StatusBadGateway, "backend %s: %v (retries exhausted)", lastB.URL, lastErr)
		return
	}
	rt.noBackend.Add(1)
	rt.writeError(w, http.StatusServiceUnavailable, "no healthy backend")
}

// specKey computes the canonical routing key of a job spec, mirroring the
// backend's own result-cache address (rescache.KeyOf over the normalized
// semantic fields) so consistent-hash lands a repeat spec on the backend
// whose cache already holds its result. A spec that yields no key (bad
// JSON, g-n) simply routes key-less — normalization divergence between
// router and backend can cost cache warmth, never correctness, because
// routing is behavior-free.
func specKey(body []byte) (uint64, bool) {
	var spec serve.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		return 0, false
	}
	if spec.Variant == "" {
		spec.Variant = "g-d"
	}
	if spec.Scale == "" {
		spec.Scale = "small"
	}
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	key, err := rescache.KeyOf(spec.Kind, spec.Variant, spec.Scale, spec.Seed, spec.Threads)
	if err != nil {
		return 0, false
	}
	return uint64(key.Low64()), true
}

// --- handlers ---

func (rt *Router) rejectDraining(w http.ResponseWriter) bool {
	if rt.draining.Load() {
		rt.writeError(w, http.StatusServiceUnavailable, "router is draining")
		return true
	}
	return false
}

func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	if rt.rejectDraining(w) {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key, hasKey := specKey(body)
	rt.routeForward(w, r, body, key, hasKey, nil)
}

func (rt *Router) handleVerify(w http.ResponseWriter, r *http.Request) {
	if rt.rejectDraining(w) {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// Any healthy backend can verify any receipt — that is the paper's
	// portability property as a cluster API. Round-robin spreads audits
	// across nodes regardless of the routing policy, so cross-node
	// replays happen continuously, not just when a test forces them.
	rt.routeForward(w, r, body, 0, false, func(cands []*Backend) *Backend {
		return rt.verifyRR.Pick(cands, 0, false)
	})
}

func (rt *Router) handleKinds(w http.ResponseWriter, r *http.Request) {
	if rt.rejectDraining(w) {
		return
	}
	rt.routeForward(w, r, nil, 0, false, func(cands []*Backend) *Backend {
		return rt.verifyRR.Pick(cands, 0, false)
	})
}

// handleSessionCreate routes a session creation through the policy, then
// records which backend owns the new id so every subsequent request on
// the session sticks to it.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if rt.rejectDraining(w) {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	rt.requests.Add(1)
	cands := rt.healthyExcept(nil)
	if len(cands) == 0 {
		rt.noBackend.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "no healthy backend")
		return
	}
	// Session creation has no content address (a session is identity, not
	// content), so key-driven policies fall back internally.
	b := rt.policy.Pick(cands, 0, false)
	b.requests.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := rt.send(r, b, body)
	if err != nil {
		if isDialError(err) {
			b.markFailure(rt.cfg.EjectAfter, time.Now().UnixNano())
		}
		rt.writeError(w, http.StatusBadGateway, "backend %s: %v", b.URL, err)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, "backend %s: reading response: %v", b.URL, err)
		return
	}
	if resp.StatusCode == http.StatusCreated {
		var si struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(respBody, &si) == nil && si.ID != "" {
			rt.sessionsMu.Lock()
			rt.sessions[si.ID] = b
			rt.sessionsMu.Unlock()
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Galois-Backend", b.URL)
	if resp.StatusCode == http.StatusTooManyRequests {
		rt.backpressure.Add(1)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

// handleSessionRouted forwards any /sessions/{id}/* request to the id's
// recorded owner. Pinned traffic bypasses health gating — its owner
// either answers or the failure surfaces (502); it is never re-created or
// replayed elsewhere, because only the owner holds the pinned state and
// the chain. Eviction (410) and not-found (404) pass through untouched.
func (rt *Router) handleSessionRouted(w http.ResponseWriter, r *http.Request) {
	if rt.rejectDraining(w) {
		return
	}
	id := r.PathValue("id")
	rt.sessionsMu.RLock()
	b := rt.sessions[id]
	rt.sessionsMu.RUnlock()
	if b == nil {
		rt.writeError(w, http.StatusNotFound, "session %s: no owning backend recorded on this router", id)
		return
	}
	var body []byte
	if r.Method != http.MethodGet {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	rt.requests.Add(1)
	b.requests.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := rt.send(r, b, body)
	if err != nil {
		if isDialError(err) {
			b.markFailure(rt.cfg.EjectAfter, time.Now().UnixNano())
		}
		rt.writeError(w, http.StatusBadGateway,
			"session %s owner %s: %v (sessions are pinned; not rerouted)", id, b.URL, err)
		return
	}
	rt.relay(w, b, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "router.policy %s\n", rt.policy.Name())
	fmt.Fprintf(&buf, "router.backends %d\n", len(rt.backends))
	fmt.Fprintf(&buf, "router.requests %d\n", rt.requests.Load())
	fmt.Fprintf(&buf, "router.proxy.errors %d\n", rt.proxyErrors.Load())
	fmt.Fprintf(&buf, "router.retries %d\n", rt.retries.Load())
	fmt.Fprintf(&buf, "router.no_backend %d\n", rt.noBackend.Load())
	fmt.Fprintf(&buf, "router.backpressure.429 %d\n", rt.backpressure.Load())
	fmt.Fprintf(&buf, "router.sessions.tracked %d\n", rt.SessionsTracked())
	for i, b := range rt.backends {
		fmt.Fprintf(&buf, "router.backend.%d.url %s\n", i, b.URL)
		fmt.Fprintf(&buf, "router.backend.%d.state %s\n", i, b.State())
		fmt.Fprintf(&buf, "router.backend.%d.inflight %d\n", i, b.InFlight())
		fmt.Fprintf(&buf, "router.backend.%d.requests %d\n", i, b.requests.Load())
		fmt.Fprintf(&buf, "router.backend.%d.errors %d\n", i, b.errors.Load())
		fmt.Fprintf(&buf, "router.backend.%d.retries %d\n", i, b.retries.Load())
		fmt.Fprintf(&buf, "router.backend.%d.ejections %d\n", i, b.ejections.Load())
		fmt.Fprintf(&buf, "router.backend.%d.probes %d\n", i, b.probes.Load())
	}
	_, _ = w.Write(buf.Bytes())
}

// Healthz is the router's own load/liveness snapshot.
type Healthz struct {
	OK       bool   `json:"ok"`
	Draining bool   `json:"draining"`
	Policy   string `json:"policy"`
	// Healthy counts backends currently accepting routed traffic; OK is
	// true while at least one is.
	Healthy  int             `json:"healthy"`
	Backends []BackendHealth `json:"backends"`
}

// BackendHealth is one backend's slice of the router Healthz.
type BackendHealth struct {
	URL       string `json:"url"`
	State     string `json:"state"`
	InFlight  int64  `json:"in_flight"`
	Requests  int64  `json:"requests"`
	Errors    int64  `json:"errors"`
	Ejections int64  `json:"ejections"`
}

// Snapshot assembles the router's Healthz.
func (rt *Router) Snapshot() Healthz {
	h := Healthz{
		Draining: rt.draining.Load(),
		Policy:   rt.policy.Name(),
	}
	for _, b := range rt.backends {
		st := b.State()
		if st == Healthy {
			h.Healthy++
		}
		h.Backends = append(h.Backends, BackendHealth{
			URL:       b.URL,
			State:     st.String(),
			InFlight:  b.InFlight(),
			Requests:  b.requests.Load(),
			Errors:    b.errors.Load(),
			Ejections: b.ejections.Load(),
		})
	}
	h.OK = h.Healthy > 0 && !h.Draining
	return h
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	h := rt.Snapshot()
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(h)
}

// --- health probing ---

func (rt *Router) prober() {
	defer rt.proberDone.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		//detlint:ignore goroutineorder prober tick-vs-stop: probe timing is wall-clock policy; backend health states never reach committed job output
		select {
		case <-rt.proberStop:
			return
		case <-t.C:
			rt.ProbeOnce()
		}
	}
}

// ProbeOnce runs one probe cycle over every backend: healthy and
// half-open backends are probed directly; ejected backends whose cooldown
// has elapsed move to half-open and get their recovery probe. Exported so
// tests (and operators via SIGUSR-style tooling) can force a cycle
// without waiting out the interval.
func (rt *Router) ProbeOnce() {
	now := time.Now().UnixNano()
	for _, b := range rt.backends {
		switch b.State() {
		case Healthy:
			rt.probe(b, now)
		case Ejected, HalfOpen:
			if b.maybeHalfOpen(rt.cfg.RecoverAfter.Nanoseconds(), now) {
				rt.probe(b, now)
			}
		}
	}
}

// probe sends one GET /healthz to b and folds the outcome into its health
// state. A backend that answers but reports draining (ok:false) counts as
// failed: it is about to stop serving, and routed work should move off it
// before its listener closes.
func (rt *Router) probe(b *Backend, now int64) {
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		b.markFailure(rt.cfg.EjectAfter, now)
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		b.markFailure(rt.cfg.EjectAfter, now)
		return
	}
	defer resp.Body.Close()
	var h serve.Healthz
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil || !h.OK {
		b.markFailure(rt.cfg.EjectAfter, now)
		return
	}
	b.markSuccess()
}
