package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"galois/internal/serve"
	"galois/internal/session"
)

// TestBackendDownMidBurst kills one of two backends and pushes a burst of
// distinct det jobs through the router: every job must still succeed
// (dial errors retry onto the survivor — safe because the request never
// reached admission), the dead backend must eject, and the survivor must
// have received each job exactly once — zero duplicate executions.
func TestBackendDownMidBurst(t *testing.T) {
	ctx := context.Background()
	cl := newCluster(t, 2, "round-robin", Config{EjectAfter: 1, Retries: 2})
	cl.backs[0].Close() // backend 0 dies; router does not know yet

	const jobs = 8
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds so nothing is served from the result cache:
			// each job is a real execution we can count.
			_, errs[i] = cl.client.Submit(ctx, serve.Spec{
				Kind: "bfs", Variant: "g-d", Scale: "small", Seed: uint64(100 + i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d failed despite a healthy survivor: %v", i, err)
		}
	}

	dead, alive := cl.rt.Backends()[0], cl.rt.Backends()[1]
	if dead.State() != Ejected {
		t.Fatalf("dead backend state = %s, want ejected (EjectAfter=1)", dead.State())
	}
	if got := alive.requests.Load(); got != jobs {
		t.Fatalf("survivor received %d job requests, want exactly %d (no duplicates, no losses)", got, jobs)
	}
	if cl.rt.retries.Load() == 0 {
		t.Fatalf("burst against a dead backend recorded zero retries")
	}
}

// TestNoRetryAfterAdmission pins the retry-safety boundary: a backend
// that accepts the connection and then dies mid-request may already have
// admitted the work, so the router must surface 502 — not replay the job
// on another backend.
func TestNoRetryAfterAdmission(t *testing.T) {
	var aHits, bHits atomic.Int64
	// Backend A accepts, reads nothing more, and severs the connection —
	// a crash after the request reached it.
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer tsA.Close()
	sB := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 8})
	realB := httptest.NewServer(sB.Handler())
	defer func() {
		_ = sB.Shutdown(context.Background())
		realB.Close()
	}()
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		realB.Config.Handler.ServeHTTP(w, r)
	}))
	defer tsB.Close()

	rt, err := New(Config{
		Backends:     []BackendSpec{{URL: tsA.URL}, {URL: tsB.URL}},
		Policy:       "round-robin",
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Round-robin's first pick is backend A (configured order).
	status, _, body := postRaw(t, front.URL+"/jobs",
		serve.Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 1})
	if status != http.StatusBadGateway {
		t.Fatalf("mid-request death: status %d (%s), want 502", status, body)
	}
	if got := aHits.Load(); got != 1 {
		t.Fatalf("backend A hit %d times, want 1", got)
	}
	if got := bHits.Load(); got != 0 {
		t.Fatalf("backend B hit %d times after A admitted-then-died — duplicate execution risk", got)
	}
	if got := rt.retries.Load(); got != 0 {
		t.Fatalf("router retried %d times on a post-dial failure", got)
	}
}

// toggleBackend wraps a real serve handler behind a kill switch: while
// down, every request — including /healthz — answers 503.
func toggleBackend(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	s := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 8})
	h := s.Handler()
	down := &atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		_ = s.Shutdown(context.Background())
		ts.Close()
	})
	return ts, down
}

// TestHalfOpenRecovery drives the health state machine end to end:
// consecutive probe failures eject; while ejected the backend gets no
// traffic; after the cooldown one failed recovery probe re-ejects with a
// fresh cooldown; one successful probe restores traffic.
func TestHalfOpenRecovery(t *testing.T) {
	ctx := context.Background()
	ts, down := toggleBackend(t)
	rt, err := New(Config{
		Backends:     []BackendSpec{{URL: ts.URL}},
		EjectAfter:   2,
		RecoverAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := serve.NewClient(front.URL, front.Client())
	b := rt.Backends()[0]

	// Healthy and serving.
	if _, err := client.Submit(ctx, serve.Spec{Kind: "bfs", Variant: "g-d", Scale: "small"}); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}

	// Two failed probes eject (EjectAfter=2).
	down.Store(true)
	rt.ProbeOnce()
	if b.State() != Healthy {
		t.Fatalf("state after 1 failed probe = %s, want still healthy", b.State())
	}
	rt.ProbeOnce()
	if b.State() != Ejected {
		t.Fatalf("state after 2 failed probes = %s, want ejected", b.State())
	}

	// Ejected backends get no traffic: the healthy set is empty.
	_, err = client.Submit(ctx, serve.Spec{Kind: "bfs", Variant: "g-d", Scale: "small"})
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit with sole backend ejected: %v, want 503", err)
	}

	// Cooldown elapses but the recovery probe fails: re-ejected, fresh
	// cooldown, one more ejection on the counter.
	time.Sleep(10 * time.Millisecond)
	rt.ProbeOnce()
	if b.State() != Ejected {
		t.Fatalf("state after failed recovery probe = %s, want re-ejected", b.State())
	}
	if got := b.ejections.Load(); got != 2 {
		t.Fatalf("ejections = %d, want 2 (initial + failed half-open)", got)
	}

	// Backend comes back: cooldown, one good probe, healthy, serving.
	down.Store(false)
	time.Sleep(10 * time.Millisecond)
	rt.ProbeOnce()
	if b.State() != Healthy {
		t.Fatalf("state after successful recovery probe = %s, want healthy", b.State())
	}
	if _, err := client.Submit(ctx, serve.Spec{Kind: "bfs", Variant: "g-d", Scale: "small"}); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
}

// TestSessionBackendLoss checks the stickiness failure mode: when a
// session's owner dies, requests on that session surface 502 — the
// session is never silently re-created on a surviving backend.
func TestSessionBackendLoss(t *testing.T) {
	cl := newCluster(t, 2, "round-robin", Config{EjectAfter: 1})
	status, owner, body := postRaw(t, cl.front.URL+"/sessions",
		session.InitSpec{Kind: "sssp", Scale: "small", Seed: 1})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	var si serve.SessionInfo
	if err := json.Unmarshal(body, &si); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// Kill the owner (round-robin's first pick is backend 0).
	var survivor *serve.Client
	for i, ts := range cl.backs {
		if ts.URL == owner {
			ts.Close()
		} else {
			survivor = serve.NewClient(cl.backs[i].URL, nil)
		}
	}

	status, _, body = postRaw(t, cl.front.URL+"/sessions/"+si.ID+"/batches",
		session.BatchSpec{Op: "reweight", Edges: 8, Seed: 1})
	if status != http.StatusBadGateway {
		t.Fatalf("batch after owner loss: status %d (%s), want 502", status, body)
	}
	if !bytes.Contains(body, []byte("not rerouted")) {
		t.Fatalf("502 body does not state the pinning contract: %s", body)
	}

	// The survivor must not have grown a session.
	h, err := survivor.Healthz(context.Background())
	if err != nil {
		t.Fatalf("survivor healthz: %v", err)
	}
	if h.SessionsLive != 0 {
		t.Fatalf("survivor has %d live sessions — the lost session was re-created elsewhere", h.SessionsLive)
	}
}

// TestSessionEvicted410 checks eviction passes through untouched: a batch
// against a closed session returns the backend's own 410 (the chain is
// sealed, not lost), and the sealed chain still verifies via the router.
func TestSessionEvicted410(t *testing.T) {
	ctx := context.Background()
	cl := newCluster(t, 1, "round-robin", Config{})
	si, err := cl.client.CreateSession(ctx, session.InitSpec{Kind: "sssp", Scale: "small", Seed: 2})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cl.client.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 1}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if _, err := cl.client.CloseSession(ctx, si.ID); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, err = cl.client.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 2})
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGone {
		t.Fatalf("batch on sealed session: %v, want 410 Gone", err)
	}

	out, err := cl.client.SessionVerify(ctx, si.ID, "", 0)
	if err != nil {
		t.Fatalf("verify sealed chain: %v", err)
	}
	if !out.Match {
		t.Fatalf("sealed chain failed verify: %+v", out)
	}
}

// TestBackpressurePassThrough checks 429 + Retry-After from a backend
// reach the client unchanged and count as propagated backpressure.
func TestBackpressurePassThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"ok":true}`)
			return
		}
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	rt, err := New(Config{Backends: []BackendSpec{{URL: ts.URL}}})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"bfs","variant":"g-d","scale":"small"}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7 (propagated, not absorbed)", got)
	}
	if got := rt.backpressure.Load(); got != 1 {
		t.Fatalf("backpressure counter = %d, want 1", got)
	}
}

// TestRouterDrain checks Shutdown flips the router to 503 on new work.
func TestRouterDrain(t *testing.T) {
	cl := newCluster(t, 1, "round-robin", Config{})
	if err := cl.rt.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	status, _, body := postRaw(t, cl.front.URL+"/jobs",
		serve.Spec{Kind: "bfs", Variant: "g-d", Scale: "small"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post while draining: status %d (%s), want 503", status, body)
	}
	if !cl.rt.Snapshot().Draining {
		t.Fatalf("snapshot does not report draining")
	}
}
