// Package router is the cluster tier of the serving stack: an HTTP
// reverse proxy that spreads one-shot jobs, receipt verifications and
// session traffic across a configured set of galoisd backends.
//
// Its load-bearing property is inherited from the paper, not invented
// here: a deterministic job's output is a pure function of its canonical
// spec, independent of machine and thread count. That portability makes
// routing *behavior-free by construction* — whichever backend a job lands
// on, under whichever policy, at whatever moment of cluster churn, the
// receipt is byte-identical. Scaling out cannot change results, and any
// node can verify any node's receipt. The router leans on both halves:
//
//   - Routing policy is pluggable (round-robin, least-loaded over the
//     router's own in-flight bookkeeping, consistent-hash on the rescache
//     canonical spec key so repeat specs land where the result cache is
//     warm, weighted) precisely because policy is a pure performance
//     knob. The determinism-under-cluster test pins this: the same job
//     mix routed under different backend counts and different policies
//     yields identical det receipts per spec.
//   - POST /verify deliberately ignores spec affinity and walks the
//     healthy set round-robin: every audit is a chance to replay a
//     receipt on a node that did not produce it, which is the paper's
//     portability property exercised continuously in production.
//
// Health is probed per backend against galoisd's GET /healthz (cheap by
// construction: counters, no engine checkout). Consecutive failures —
// probe failures or dial errors observed on live traffic — eject a
// backend; after a cooldown it re-enters half-open and one probe success
// restores it. Request retries are bounded and restricted to dial-phase
// connection errors, where the request provably never reached admission:
// once a backend may have admitted work, retrying elsewhere could execute
// an Exclusive input or session batch twice, so any later failure
// surfaces to the client instead. 429 responses pass through with their
// Retry-After — admission backpressure is propagated, not absorbed.
//
// Sessions are sticky by construction: the backend that creates a session
// owns its pinned state and hash chain, so the router records id →
// backend at creation and routes every /sessions/{id}/* request there,
// bypassing health gating (a pinned request either reaches its owner or
// fails; it is never re-created elsewhere — a lost backend surfaces as
// 502, an evicted chain as the backend's own 410).
package router
