package router

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"galois/internal/rng"
)

// State is a backend's health state in the router's view.
type State int32

const (
	// Healthy backends receive routed traffic and periodic probes.
	Healthy State = iota
	// Ejected backends receive no routed traffic; after the recovery
	// cooldown the prober moves them to HalfOpen.
	Ejected
	// HalfOpen backends receive probes only; one success restores
	// Healthy, one failure re-ejects with a fresh cooldown.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Ejected:
		return "ejected"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Backend is one galoisd instance in the routed set.
type Backend struct {
	// URL is the backend's base URL (e.g. "http://127.0.0.1:8090").
	URL string
	// Weight scales the backend's share under the weighted policy
	// (minimum 1).
	Weight int

	// index is the backend's position in the configured set: the
	// deterministic tie-breaker every policy falls back to.
	index int
	// id is a stable 64-bit identity derived from the URL, mixed with the
	// spec key for rendezvous (consistent-hash) scoring.
	id uint64

	// inflight counts proxied requests currently outstanding against this
	// backend — the router's own bookkeeping, which is what least-loaded
	// scores on (no healthz round-trip on the request path).
	inflight atomic.Int64

	// Traffic counters, exported at the router's /metrics.
	requests atomic.Int64 // proxied requests started
	errors   atomic.Int64 // transport errors observed (dial or later)
	retries  atomic.Int64 // dial-error retries charged to this backend

	// Health state below is low-frequency (probe cycles and failure
	// marking) and guarded by mu; the request path only reads state via
	// the atomic snapshot.
	mu        sync.Mutex
	state     atomic.Int32
	fails     int   // consecutive failures while Healthy/HalfOpen
	ejectedAt int64 // nanotime of the last ejection
	ejections atomic.Int64
	probes    atomic.Int64

	// currentWeight is the smooth-WRR accumulator, guarded by the
	// weighted policy's own mutex.
	currentWeight int
}

func newBackend(url string, weight, index int) *Backend {
	if weight < 1 {
		weight = 1
	}
	h := fnv.New64a()
	h.Write([]byte(url))
	return &Backend{
		URL:    strings.TrimRight(url, "/"),
		Weight: weight,
		index:  index,
		id:     rng.Mix64(h.Sum64()),
	}
}

// State returns the backend's current health state.
func (b *Backend) State() State { return State(b.state.Load()) }

// InFlight returns the number of proxied requests currently outstanding.
func (b *Backend) InFlight() int64 { return b.inflight.Load() }

// markFailure records one failed probe or dial error. ejectAfter is the
// consecutive-failure threshold; now is the caller's clock reading (the
// router injects it so this file stays free of wall-clock reads).
func (b *Backend) markFailure(ejectAfter int, now int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch State(b.state.Load()) {
	case HalfOpen:
		// A half-open backend failed its recovery probe: re-eject with a
		// fresh cooldown.
		b.state.Store(int32(Ejected))
		b.ejectedAt = now
		b.ejections.Add(1)
		b.fails = 0
	case Healthy:
		b.fails++
		if b.fails >= ejectAfter {
			b.state.Store(int32(Ejected))
			b.ejectedAt = now
			b.ejections.Add(1)
			b.fails = 0
		}
	}
}

// markSuccess records one successful probe (or any successfully proxied
// request), clearing the failure streak and restoring a half-open backend
// to healthy.
func (b *Backend) markSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if State(b.state.Load()) == HalfOpen {
		b.state.Store(int32(Healthy))
	}
}

// maybeHalfOpen moves an ejected backend to half-open once its cooldown
// has elapsed, returning true if a recovery probe should be sent.
func (b *Backend) maybeHalfOpen(recoverAfter, now int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if State(b.state.Load()) != Ejected {
		return State(b.state.Load()) == HalfOpen
	}
	if now-b.ejectedAt < recoverAfter {
		return false
	}
	b.state.Store(int32(HalfOpen))
	return true
}
