package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"galois/internal/serve"
	"galois/internal/session"
)

// cluster is a test deployment: n real galoisd backends behind one
// router, all on httptest listeners.
type cluster struct {
	rt     *Router
	front  *httptest.Server
	backs  []*httptest.Server
	client *serve.Client
}

func newCluster(t *testing.T, n int, policy string, cfg Config) *cluster {
	t.Helper()
	cl := &cluster{}
	for i := 0; i < n; i++ {
		s := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			_ = s.Shutdown(context.Background())
			ts.Close()
		})
		cl.backs = append(cl.backs, ts)
		cfg.Backends = append(cfg.Backends, BackendSpec{URL: ts.URL})
	}
	cfg.Policy = policy
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	cl.rt = rt
	cl.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		cl.front.Close()
		rt.Close()
	})
	cl.client = serve.NewClient(cl.front.URL, cl.front.Client())
	return cl
}

// postRaw sends a JSON POST through the router front and returns the
// response status, the X-Galois-Backend header (which backend served it)
// and the body.
func postRaw(t *testing.T, url string, v any) (int, string, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Galois-Backend"), data
}

// clusterMix is the job mix the determinism matrix routes: deterministic
// cells across kinds and seeds, a thread-count spread, and one
// non-deterministic job to keep the route key-less path exercised.
func clusterMix() []serve.Spec {
	return []serve.Spec{
		{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 1},
		{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 2, Threads: 2},
		{Kind: "sssp", Variant: "g-d", Scale: "small", Seed: 1},
		{Kind: "sssp", Variant: "g-dnc", Scale: "small", Seed: 3},
		{Kind: "mis", Variant: "g-d", Scale: "small", Seed: 1, Threads: 2},
		{Kind: "msf", Variant: "g-d", Scale: "small", Seed: 7},
		{Kind: "bfs", Variant: "g-n", Scale: "small", Seed: 1},
	}
}

// semKey identifies a spec's result up to scheduling parameters: thread
// count is deliberately excluded, because the fingerprint must not depend
// on it.
func semKey(s serve.Spec) string {
	return fmt.Sprintf("%s/%s/%s/%d", s.Kind, s.Variant, s.Scale, s.Seed)
}

// TestDeterminismUnderCluster is the subsystem's load-bearing test: the
// same job mix routed through clusters of 1, 2 and 4 backends under
// round-robin, least-loaded and consistent-hash yields byte-identical det
// fingerprints per spec — equal to a direct single-server baseline — and
// every receipt then verifies through the router, i.e. on whichever node
// the verify round-robin happens to land. Routing is behavior-free.
func TestDeterminismUnderCluster(t *testing.T) {
	ctx := context.Background()
	mix := clusterMix()

	// Baseline: one backend, no router.
	base := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64})
	bts := httptest.NewServer(base.Handler())
	t.Cleanup(func() {
		_ = base.Shutdown(context.Background())
		bts.Close()
	})
	bc := serve.NewClient(bts.URL, bts.Client())
	want := make(map[string]string)
	for _, spec := range mix {
		res, err := bc.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("baseline %s: %v", spec, err)
		}
		if spec.Deterministic() {
			want[semKey(spec)] = res.Receipt.Fingerprint
		}
	}

	for _, n := range []int{1, 2, 4} {
		for _, policy := range []string{"round-robin", "least-loaded", "consistent-hash"} {
			t.Run(fmt.Sprintf("backends=%d/%s", n, policy), func(t *testing.T) {
				cl := newCluster(t, n, policy, Config{})

				// Submit the mix concurrently so least-loaded sees real
				// in-flight skew and round-robin interleaves.
				results := make([]*serve.JobResult, len(mix))
				var wg sync.WaitGroup
				errs := make([]error, len(mix))
				for i, spec := range mix {
					wg.Add(1)
					go func(i int, spec serve.Spec) {
						defer wg.Done()
						results[i], errs[i] = cl.client.Submit(ctx, spec)
					}(i, spec)
				}
				wg.Wait()
				for i, err := range errs {
					if err != nil {
						t.Fatalf("submit %s: %v", mix[i], err)
					}
				}
				for i, spec := range mix {
					if !spec.Deterministic() {
						continue
					}
					got := results[i].Receipt.Fingerprint
					if got != want[semKey(spec)] {
						t.Errorf("%s: fingerprint %s under %d backends/%s, want %s (baseline)",
							spec, got, n, policy, want[semKey(spec)])
					}
				}

				// Every receipt verifies through the router — whichever
				// backend the verify round-robin lands on.
				for i, spec := range mix {
					if !spec.Deterministic() {
						continue
					}
					vr, err := cl.client.Verify(ctx, results[i].Receipt)
					if err != nil {
						t.Fatalf("verify %s: %v", spec, err)
					}
					if !vr.Match {
						t.Errorf("%s: receipt failed cluster verify: expect %s got %s",
							spec, vr.Expect, vr.Got)
					}
				}
			})
		}
	}
}

// TestCrossNodeVerify pins the headline portability demo: a receipt
// produced on backend A verifies on backend B. Verify routes round-robin
// regardless of policy, so with two backends a handful of verifies
// provably hits a node that did not produce the receipt.
func TestCrossNodeVerify(t *testing.T) {
	cl := newCluster(t, 2, "consistent-hash", Config{})
	spec := serve.Spec{Kind: "sssp", Variant: "g-d", Scale: "small", Seed: 11}

	status, producer, body := postRaw(t, cl.front.URL+"/jobs", spec)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	if producer == "" {
		t.Fatalf("submit response missing X-Galois-Backend")
	}
	var res serve.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode job result: %v", err)
	}

	crossNode := false
	for i := 0; i < 4; i++ {
		vstatus, verifier, vbody := postRaw(t, cl.front.URL+"/verify", res.Receipt)
		if vstatus != http.StatusOK {
			t.Fatalf("verify: status %d: %s", vstatus, vbody)
		}
		var vr serve.VerifyResult
		if err := json.Unmarshal(vbody, &vr); err != nil {
			t.Fatalf("decode verify result: %v", err)
		}
		if !vr.Match {
			t.Fatalf("verify on %s failed: expect %s got %s (produced on %s)",
				verifier, vr.Expect, vr.Got, producer)
		}
		if verifier != producer {
			crossNode = true
		}
	}
	if !crossNode {
		t.Fatalf("4 round-robin verifies over 2 backends never left the producer %s", producer)
	}
}

// TestPolicyPicks exercises each policy's selection function directly.
func TestPolicyPicks(t *testing.T) {
	mk := func(urls ...string) []*Backend {
		var bs []*Backend
		for i, u := range urls {
			bs = append(bs, newBackend(u, 1, i))
		}
		return bs
	}

	t.Run("round-robin", func(t *testing.T) {
		bs := mk("http://a", "http://b", "http://c")
		p, _ := NewPolicy("round-robin")
		for i := 0; i < 9; i++ {
			if got := p.Pick(bs, 0, false); got != bs[i%3] {
				t.Fatalf("pick %d = %s, want %s", i, got.URL, bs[i%3].URL)
			}
		}
	})

	t.Run("least-loaded", func(t *testing.T) {
		bs := mk("http://a", "http://b", "http://c")
		p, _ := NewPolicy("least-loaded")
		bs[0].inflight.Store(3)
		bs[1].inflight.Store(1)
		bs[2].inflight.Store(2)
		if got := p.Pick(bs, 0, false); got != bs[1] {
			t.Fatalf("pick = %s, want least-loaded b", got.URL)
		}
		bs[1].inflight.Store(3)
		bs[2].inflight.Store(3)
		// All equal: tie broken by configured order.
		if got := p.Pick(bs, 0, false); got != bs[0] {
			t.Fatalf("tie pick = %s, want first-configured a", got.URL)
		}
	})

	t.Run("consistent-hash", func(t *testing.T) {
		bs := mk("http://a", "http://b", "http://c", "http://d")
		p, _ := NewPolicy("consistent-hash")
		owner := make(map[uint64]*Backend)
		for key := uint64(1); key <= 200; key++ {
			b := p.Pick(bs, key, true)
			if again := p.Pick(bs, key, true); again != b {
				t.Fatalf("key %d not sticky: %s then %s", key, b.URL, again.URL)
			}
			owner[key] = b
		}
		// Rendezvous minimal disruption: dropping one backend remaps only
		// the keys it owned; every other key keeps its owner.
		reduced := []*Backend{bs[0], bs[1], bs[3]} // bs[2] ejected
		for key, b := range owner {
			nb := p.Pick(reduced, key, true)
			if b != bs[2] && nb != b {
				t.Fatalf("key %d moved from %s to %s though its owner stayed healthy", key, b.URL, nb.URL)
			}
			if b == bs[2] && nb == bs[2] {
				t.Fatalf("key %d still routed to the removed backend", key)
			}
		}
		// Keyless requests fall back rather than all landing on one node.
		seen := make(map[*Backend]bool)
		for i := 0; i < len(bs); i++ {
			seen[p.Pick(bs, 0, false)] = true
		}
		if len(seen) != len(bs) {
			t.Fatalf("keyless fallback covered %d/%d backends", len(seen), len(bs))
		}
	})

	t.Run("weighted", func(t *testing.T) {
		bs := mk("http://a", "http://b", "http://c")
		bs[1].Weight = 2
		p, _ := NewPolicy("weighted")
		counts := make(map[*Backend]int)
		for i := 0; i < 8; i++ {
			counts[p.Pick(bs, 0, false)]++
		}
		if counts[bs[0]] != 2 || counts[bs[1]] != 4 || counts[bs[2]] != 2 {
			t.Fatalf("weighted shares = %d/%d/%d over 8 picks, want 2/4/2",
				counts[bs[0]], counts[bs[1]], counts[bs[2]])
		}
	})

	t.Run("unknown", func(t *testing.T) {
		if _, err := NewPolicy("zork"); err == nil {
			t.Fatalf("unknown policy accepted")
		}
	})
}

// TestSessionSticky checks sessions route by the id → backend map: every
// request on a session lands on the backend that created it, the chain
// verifies through the router, and an id this router never saw is a 404.
func TestSessionSticky(t *testing.T) {
	ctx := context.Background()
	cl := newCluster(t, 2, "round-robin", Config{})

	type sess struct {
		id    string
		owner string
	}
	var sessions []sess
	for i := 0; i < 2; i++ {
		status, owner, body := postRaw(t, cl.front.URL+"/sessions",
			session.InitSpec{Kind: "sssp", Scale: "small", Seed: uint64(i + 1)})
		if status != http.StatusCreated {
			t.Fatalf("create session %d: status %d: %s", i, status, body)
		}
		var si serve.SessionInfo
		if err := json.Unmarshal(body, &si); err != nil {
			t.Fatalf("decode session info: %v", err)
		}
		sessions = append(sessions, sess{id: si.ID, owner: owner})
	}
	if sessions[0].owner == sessions[1].owner {
		t.Fatalf("round-robin put both sessions on %s", sessions[0].owner)
	}
	if cl.rt.SessionsTracked() != 2 {
		t.Fatalf("sessions tracked = %d, want 2", cl.rt.SessionsTracked())
	}

	// Batches stick to the owner — interleaved across sessions on purpose.
	for round := 0; round < 3; round++ {
		for _, s := range sessions {
			status, served, body := postRaw(t,
				cl.front.URL+"/sessions/"+s.id+"/batches",
				session.BatchSpec{Op: "reweight", Edges: 16, Seed: uint64(round + 1)})
			if status != http.StatusOK {
				t.Fatalf("batch on %s: status %d: %s", s.id, status, body)
			}
			if served != s.owner {
				t.Fatalf("batch on %s served by %s, owner is %s — stickiness broken", s.id, served, s.owner)
			}
		}
	}

	// The chain verifies through the router (replayed on the owner).
	for _, s := range sessions {
		out, err := cl.client.SessionVerify(ctx, s.id, "", 0)
		if err != nil {
			t.Fatalf("session verify %s: %v", s.id, err)
		}
		if !out.Match || out.Links != 4 {
			t.Fatalf("session %s verify = %+v, want match over 4 links", s.id, out)
		}
	}

	// GET and DELETE route by the same map.
	si, err := cl.client.Session(ctx, sessions[0].id)
	if err != nil || si.ID != sessions[0].id {
		t.Fatalf("session get: %v (%+v)", err, si)
	}
	if _, err := cl.client.CloseSession(ctx, sessions[0].id); err != nil {
		t.Fatalf("session close: %v", err)
	}

	// An id with no recorded owner is the router's own 404.
	status, _, body := postRaw(t, cl.front.URL+"/sessions/nosuchid/batches",
		session.BatchSpec{Op: "reweight", Edges: 1, Seed: 1})
	if status != http.StatusNotFound {
		t.Fatalf("unknown session id: status %d: %s", status, body)
	}
}

// TestRouterObservability spot-checks the router's own /healthz and
// /metrics surfaces.
func TestRouterObservability(t *testing.T) {
	cl := newCluster(t, 2, "least-loaded", Config{})

	resp, err := http.Get(cl.front.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if !h.OK || h.Healthy != 2 || h.Policy != "least-loaded" || len(h.Backends) != 2 {
		t.Fatalf("healthz = %+v, want ok with 2 healthy backends under least-loaded", h)
	}

	mresp, err := http.Get(cl.front.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer mresp.Body.Close()
	data, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"router.policy least-loaded", "router.backends 2",
		"router.backend.0.state healthy", "router.backend.1.state healthy"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}

	// /kinds proxies to a backend.
	kinds, err := cl.client.Kinds(context.Background())
	if err != nil || len(kinds) == 0 {
		t.Fatalf("kinds through router: %v (%v)", err, kinds)
	}
}

// TestClusterLoadBenchEntries drives serve.RunLoad through a 2-backend
// cluster: the per-seed fingerprint policing inside RunLoad becomes a
// cross-backend determinism check (requests for one seed land on whichever
// backends round-robin picks), and the resulting bench entries carry Mode
// "serve-cluster" keyed by backend count and policy.
func TestClusterLoadBenchEntries(t *testing.T) {
	cl := newCluster(t, 2, "round-robin", Config{})
	cfg := serve.LoadConfig{
		Kinds: []string{"bfs", "sssp"}, Variants: []string{"g-d"},
		Clients: 4, PerClient: 4, Scale: "small", Seed: 42, Threads: 1,
		ClusterBackends: 2, ClusterPolicy: "round-robin",
	}
	rep, err := serve.RunLoad(context.Background(), cl.client, cfg)
	if err != nil {
		t.Fatalf("RunLoad through router: %v", err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load errors: %v", rep.ErrorSamples)
	}
	if len(rep.Mismatches) > 0 {
		t.Fatalf("cross-backend determinism violations: %v", rep.Mismatches)
	}
	entries := rep.BenchEntries(cfg)
	if len(entries) != 2 {
		t.Fatalf("bench entries = %d, want 2 cells", len(entries))
	}
	for _, e := range entries {
		if e.Mode != "serve-cluster" || e.Backends != 2 || e.Policy != "round-robin" {
			t.Fatalf("entry not labeled serve-cluster/b2/round-robin: %+v", e)
		}
		if e.Fingerprint == "" {
			t.Fatalf("cluster entry lost its fingerprint: %+v", e)
		}
		if key := e.Key(); !strings.Contains(key, "/b2/round-robin") {
			t.Fatalf("key %q does not carry backends+policy", key)
		}
	}
	// Both backends actually served work — the cluster was exercised, not
	// one node behind a label.
	for i, b := range cl.rt.Backends() {
		if b.requests.Load() == 0 {
			t.Fatalf("backend %d received no requests under round-robin load", i)
		}
	}
}
