package router

import (
	"fmt"
	"sync"
	"sync/atomic"

	"galois/internal/rng"
)

// A Policy picks a backend for one routed request from the current
// healthy set. candidates is always non-empty and in configured order, so
// every tie-break is deterministic; key is the request's canonical spec
// hash (rescache key prefix) and hasKey reports whether the request has
// one — non-deterministic specs and session creations do not, and
// key-driven policies fall back to round-robin for them.
//
// Policies are pure performance knobs: the determinism-under-cluster test
// proves the receipts of a job mix are byte-identical under every policy,
// which is what makes them safe to swap in production.
type Policy interface {
	Name() string
	Pick(candidates []*Backend, key uint64, hasKey bool) *Backend
}

// NewPolicy resolves a policy by name: "round-robin", "least-loaded",
// "consistent-hash" or "weighted".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return &leastLoaded{}, nil
	case "consistent-hash":
		return &consistentHash{}, nil
	case "weighted":
		return &weighted{}, nil
	}
	return nil, fmt.Errorf("router: unknown policy %q (round-robin|least-loaded|consistent-hash|weighted)", name)
}

// roundRobin cycles through the healthy set in configured order.
type roundRobin struct{ next atomic.Uint64 }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(candidates []*Backend, _ uint64, _ bool) *Backend {
	n := p.next.Add(1) - 1
	return candidates[n%uint64(len(candidates))]
}

// leastLoaded picks the backend with the fewest in-flight proxied
// requests (the router's own bookkeeping — no probe round-trip on the
// request path), breaking ties by configured order.
type leastLoaded struct{}

func (p *leastLoaded) Name() string { return "least-loaded" }

func (p *leastLoaded) Pick(candidates []*Backend, _ uint64, _ bool) *Backend {
	best := candidates[0]
	bestLoad := best.InFlight()
	for _, b := range candidates[1:] {
		if l := b.InFlight(); l < bestLoad {
			best, bestLoad = b, l
		}
	}
	return best
}

// consistentHash scores each candidate by rendezvous (highest random
// weight) hashing of the spec key against the backend identity: a given
// spec always lands on the same backend while that backend is healthy, so
// repeat submissions find the result cache warm, and membership change
// remaps only the specs that hashed to the lost/gained backend. Requests
// without a spec key (g-n, session creation) fall back to round-robin.
type consistentHash struct{ fallback roundRobin }

func (p *consistentHash) Name() string { return "consistent-hash" }

func (p *consistentHash) Pick(candidates []*Backend, key uint64, hasKey bool) *Backend {
	if !hasKey {
		return p.fallback.Pick(candidates, 0, false)
	}
	best := candidates[0]
	bestScore := rng.Mix64(key ^ best.id)
	for _, b := range candidates[1:] {
		if s := rng.Mix64(key ^ b.id); s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// weighted implements smooth weighted round-robin over the healthy set:
// each pick adds every candidate's weight to its accumulator, picks the
// largest (ties by configured order), and charges the winner the total
// weight — yielding the classic evenly interleaved w-proportional
// sequence.
type weighted struct{ mu sync.Mutex }

func (p *weighted) Name() string { return "weighted" }

func (p *weighted) Pick(candidates []*Backend, _ uint64, _ bool) *Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	best := candidates[0]
	for _, b := range candidates {
		b.currentWeight += b.Weight
		total += b.Weight
		if b.currentWeight > best.currentWeight {
			best = b
		}
	}
	best.currentWeight -= total
	return best
}
