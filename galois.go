// Package galois is a Go implementation of the Galois programming model for
// unordered algorithms with on-demand deterministic execution, reproducing
// "Deterministic Galois: On-demand, Portable and Parameterless"
// (Nguyen, Lenharth, Pingali — ASPLOS 2014).
//
// # Programming model
//
// A program is a pool of tasks executed by ForEach. Tasks may read and
// write shared state and may create new tasks, but they must be cautious:
// all shared reads happen first, through Ctx.Acquire on the abstract
// location (Lockable) guarding the data, and all shared writes are deferred
// into a single Ctx.OnCommit closure — the task's failsafe point.
//
//	stats := galois.ForEach(nodes, func(ctx *galois.Ctx[*Node], n *Node) {
//		ctx.Acquire(&n.Lockable)          // neighborhood
//		for _, m := range n.Neighbors {
//			ctx.Acquire(&m.Lockable)
//		}
//		v := compute(n)
//		ctx.OnCommit(func(c *galois.Ctx[*Node]) {
//			n.Value = v                    // write phase
//			c.Push(next(n))                // S(t): new tasks
//		})
//	}, galois.WithSched(galois.Deterministic))
//
// # On-demand determinism
//
// The same body runs under two schedulers, selected by WithSched:
//
//   - NonDeterministic: the speculative scheduler of the paper's §2.1 —
//     locations are locked as they are acquired and conflicting tasks
//     abort and retry. Fast, but the set of serializations (and therefore
//     the output of algorithms with many legal outputs) varies run to run.
//   - Deterministic: DIG scheduling (§3) — tasks execute in rounds; each
//     round inspects a window of tasks, implicitly builds the interference
//     graph with priority marks, selects a deterministic independent set,
//     and commits it. The schedule, and hence the output, is a pure
//     function of the input: independent of thread count, machine and
//     timing (portable), with an adaptive window that needs no per-machine
//     tuning (parameterless).
package galois

import (
	"galois/internal/cachesim"
	"galois/internal/core"
	"galois/internal/marks"
	"galois/internal/obs"
	"galois/internal/stats"
)

// Sched selects the scheduler for ForEach.
type Sched = core.Sched

// Scheduler values.
const (
	// NonDeterministic is the speculative scheduler (paper §2.1).
	NonDeterministic = core.NonDeterministic
	// Deterministic is the DIG scheduler (paper §3).
	Deterministic = core.Deterministic
)

// Ctx is the per-task execution context. See the core package for the
// method set: Acquire, OnCommit, Push, PushWithID, TID, Threads.
type Ctx[T any] = core.Ctx[T]

// Lockable is the mark word embedded in every abstract location that tasks
// may conflict on. The zero value is ready to use.
type Lockable = marks.Lockable

// Stats summarizes one ForEach run: commits, aborts, rounds, atomic
// updates, elapsed time.
type Stats = stats.Stats

// Tracer records abstract-location accesses for locality analysis
// (paper §5.4). Create with NewTracer and attach with WithProfile.
type Tracer = cachesim.Tracer

// NewTracer returns a locality tracer for nthreads workers. The thread
// count must match the WithThreads value of the run it profiles.
func NewTracer(nthreads int) *Tracer { return cachesim.NewTracer(nthreads) }

// Option configures ForEach.
type Option func(*core.Options)

// WithSched selects the scheduler. The default is NonDeterministic.
func WithSched(s Sched) Option { return func(o *core.Options) { o.Sched = s } }

// WithThreads sets the number of worker goroutines. Values below 1 select
// GOMAXPROCS. Under the Deterministic scheduler the output is identical for
// every thread count — the paper's portability property.
func WithThreads(n int) Option { return func(o *core.Options) { o.Threads = n } }

// WithoutContinuation disables the continuation optimization of §3.3: the
// deterministic scheduler then re-executes each selected task from scratch
// in its commit phase (the baseline of §3.2). Output is unaffected; this
// exists for the Figure 10 ablation.
func WithoutContinuation() Option { return func(o *core.Options) { o.Continuation = false } }

// WithLocalityInterleave enables or disables the locality-aware round
// placement of §3.3 (default on).
func WithLocalityInterleave(on bool) Option {
	return func(o *core.Options) { o.LocalityInterleave = on }
}

// WithPreassignedIDs declares that every task created via PushWithID
// carries an explicit deterministic priority, skipping the (parent, k)
// sort of §3.2 — the third optimization of §3.3.
func WithPreassignedIDs() Option { return func(o *core.Options) { o.PreassignedIDs = true } }

// WithSerialCoordinator forces the deterministic scheduler's serial round
// coordinator: gather, compaction and generation formation run on worker 0
// between dedicated barriers instead of through the parallel scan-based
// pipelines. Output is byte-identical either way; the flag exists as the
// differential-testing oracle for that claim, not as a tuning knob.
func WithSerialCoordinator() Option { return func(o *core.Options) { o.SerialCoordinator = true } }

// WithWindow overrides the adaptive window policy's constants: the initial
// window (0 = default n/64), the floor, and the commit-ratio target. These
// affect performance only; for any fixed values the deterministic schedule
// remains thread- and machine-independent.
func WithWindow(initial, floor int, target float64) Option {
	return func(o *core.Options) {
		o.WindowInit = initial
		if floor > 0 {
			o.WindowMin = floor
		}
		if target > 0 {
			o.WindowTarget = target
		}
	}
}

// WithFIFO selects an approximately-FIFO worklist for the non-deterministic
// scheduler (default: chunked LIFO with stealing). A scheduling hint in the
// Galois sense — it changes performance, not correctness — that
// level-structured algorithms such as BFS need to avoid pathological
// traversal orders. Ignored by the deterministic scheduler.
func WithFIFO() Option { return func(o *core.Options) { o.FIFO = true } }

// WithPriority selects an ordered-by-integer-metric (OBIM) worklist for the
// non-deterministic scheduler: lower fn values drain first, best-effort,
// clamped into [0, levels) buckets (levels <= 0 means 64). The classic
// Galois scheduling hint for data-driven algorithms (bfs by distance,
// preflow-push by height): it changes performance, never correctness, and
// the deterministic scheduler ignores it. fn must take the loop's item
// type; a mismatch panics when the loop starts.
func WithPriority[T any](fn func(T) int, levels int) Option {
	return func(o *core.Options) {
		o.Priority = fn
		o.PriorityLevels = levels
	}
}

// TraceSink receives scheduler trace events. The standard implementation is
// *Trace (NewTrace); custom sinks must tolerate concurrent Emit calls from
// distinct thread ids without synchronizing them against each other.
type TraceSink = obs.Sink

// Trace is the standard trace sink: per-thread lock-free buffers of
// scheduler events with observational timestamps. After a traced run it can
// be exported as Chrome trace-event JSON (WriteChromeTrace, loadable in
// Perfetto or chrome://tracing), rendered as canonical timestamp-free lines
// (CanonicalLines), or summarized (Summary).
type Trace = obs.Trace

// NewTrace returns a trace sink sized for runs of up to nthreads workers
// (values below 1 mean 1). Attaching it to a run with more threads panics
// when the loop starts.
func NewTrace(nthreads int) *Trace { return obs.NewTrace(nthreads) }

// Metrics is a registry of named counters and histograms populated by the
// schedulers: per-round committed/failed distributions, acquire-failure
// depths, and the run totals of Stats. Recording is lock-free per thread.
type Metrics = obs.Registry

// NewMetrics returns a metrics registry sized for runs of up to nthreads
// workers (values below 1 mean 1).
func NewMetrics(nthreads int) *Metrics { return obs.NewRegistry(nthreads) }

// WithTrace attaches a trace sink to the run. Tracing is non-perturbing:
// structural events are emitted only from serial sections of the
// schedulers, so a traced deterministic run commits byte-identical output
// to an untraced one — timestamps are observational, never read back.
func WithTrace(sink TraceSink) Option { return func(o *core.Options) { o.Sink = sink } }

// WithMetrics attaches a metrics registry to the run. Counters accumulate
// across runs sharing the registry.
func WithMetrics(m *Metrics) Option { return func(o *core.Options) { o.Metrics = m } }

// WithRoundSamples records per-round (window, committed) samples in
// Stats.Trace.
func WithRoundSamples() Option { return func(o *core.Options) { o.Trace = true } }

// WithProfile attaches a locality tracer that records every Acquire for the
// reuse-distance analysis of §5.4.
func WithProfile(t *Tracer) Option { return func(o *core.Options) { o.Profile = t } }

// ForEach executes the task pool `items` with body under the configured
// scheduler and returns run statistics. It corresponds to the foreach
// iterator of the paper's Figure 1a.
//
// The body must follow the cautious-task protocol documented on Ctx:
// Acquire every location it reads, defer every shared write into OnCommit,
// and create tasks only through Push/PushWithID.
//
// Each call allocates and discards its run state (workers, arenas,
// contexts) unless an Engine is supplied with WithEngine; programs that
// run loops repeatedly should hold one Engine and pass it to every run.
func ForEach[T any](items []T, body func(*Ctx[T], T), opts ...Option) Stats {
	opt := core.Defaults()
	for _, o := range opts {
		o(&opt)
	}
	return core.ForEach(items, body, opt)
}

// Engine retains run state across loops: the persistent worker pool,
// barriers, the statistics collector and, per item type, generation arenas,
// execution contexts and gather/sort scratch. The first run on an engine
// allocates this state; later runs of similar shape reuse it, so the steady
// state of a repeatedly driven engine allocates (near) zero per run.
//
// Reuse never changes results: an engine-reused deterministic run commits
// byte-identical output — and emits the identical event sequence — to a
// fresh ForEach with the same options, at every thread count.
//
// An engine runs one loop at a time and may be passed to any loop item
// type. A second RunOn/ForEachOn while one is in flight panics immediately
// (an atomic in-use guard) rather than corrupting retained state — the
// contract that makes engines safe to check in and out of a pool, as the
// galoisd serving layer does: hand an idle engine to any job, never share
// one between concurrent jobs. Close releases its worker goroutines.
type Engine = core.Engine

// NewEngine returns an engine whose runs default to the configured options.
// Only WithThreads is consulted at construction (it sets the default worker
// count, GOMAXPROCS if unset); per-run options are given to ForEachOn or to
// ForEach via WithEngine as usual.
func NewEngine(opts ...Option) *Engine {
	opt := core.Defaults()
	for _, o := range opts {
		o(&opt)
	}
	return core.NewEngine(opt.Threads)
}

// WithEngine directs ForEach to run on e, reusing its retained state,
// instead of building and discarding run state for the call.
func WithEngine(e *Engine) Option { return func(o *core.Options) { o.Engine = e } }

// ForEachOn is ForEach on an engine: identical semantics, but all run state
// comes from e and is retained for the next run. Equivalent to passing
// WithEngine(e).
func ForEachOn[T any](e *Engine, items []T, body func(*Ctx[T], T), opts ...Option) Stats {
	opt := core.Defaults()
	for _, o := range opts {
		o(&opt)
	}
	return core.RunOn(e, items, body, opt)
}
