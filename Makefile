# Verification entry points. CI (.github/workflows/ci.yml) runs `make check`;
# each target is independently useful during development.

GO ?= go

.PHONY: check build vet lint lint-effects test race trace-smoke serve-smoke cluster-smoke bench-compare bench-scaling

# Everything CI runs, in CI's order.
check: vet lint build test race trace-smoke serve-smoke cluster-smoke bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# detlint: the repository's determinism-hazard analyzer (see DESIGN.md,
# "Determinism hazards and how we check them"). Non-zero exit on any
# finding; scope is detlint.conf at the repo root.
lint:
	$(GO) run ./cmd/detlint ./...

# Only the interprocedural effect passes (see DESIGN.md, "Effect analysis
# and the failsafe theorem"): failsafe-point verification, commit-handler
# purity and fingerprint taint. Useful while working on operator code,
# where these are the rules that actually move.
lint-effects:
	$(GO) run ./cmd/detlint -run failsafe,commitpure,taintfp ./...

test:
	$(GO) test ./...

# The race detector covers the runtime and the apps — the packages where
# goroutines share marks, worklists and task state. detlint's static rules
# and -race are complementary: the linter catches order hazards races
# never exhibit, the race detector catches unsynchronized access the
# linter cannot see.
race:
	$(GO) test -race ./internal/core/... ./internal/apps/... ./internal/serve/... ./internal/session/... ./internal/router/... ./internal/para/... ./internal/psort/... ./internal/scan/...

# End-to-end trace check: run one traced figure at small scale, then prove
# the emitted Chrome trace-event JSON parses and is structurally sound
# (cmd/tracecheck). Guards the whole obs pipeline — instrumentation, sink,
# export — without needing a trace viewer in CI.
trace-smoke:
	$(GO) run ./cmd/repro -fig window -scale small -threads 2 -trace trace.json > /dev/null
	$(GO) run ./cmd/tracecheck trace.json

# End-to-end serving check: galoisd on an ephemeral port, a mixed
# det/nondet workload at two client concurrency levels through galoisload,
# three receipts replayed through POST /verify, then a graceful SIGTERM
# drain. Fails on any determinism mismatch, verification failure or
# request error; the load report lands in serve-load.json.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end cluster check: two galoisd backends behind a galoisrouter on
# ephemeral ports, a mixed det/nondet workload routed across them (per-seed
# fingerprints policed cross-backend), the cross-node verify demo (a
# receipt produced on backend A verified on backend B), one sticky session,
# then a SIGTERM drain of the whole stack. The load report lands in
# cluster-load.json.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Compare the two most recent committed benchmark trajectories
# (BENCH_<n>.json). Wall-clock movement is report-only (different machines
# measured different PRs); any allocs_per_op increase or deterministic
# fingerprint change fails. No-op until two trajectory files exist.
bench-compare:
	@files=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "bench-compare: fewer than two BENCH_*.json files, skipping"; exit 0; fi; \
	$(GO) run ./cmd/benchdiff -wall-report-only $$1 $$2

# Measure a fresh deterministic thread sweep (t1/2/4/8, small scale — CI
# machines are slow and the scaling_efficiency column is a same-run wall
# RATIO, so scale only changes noise, not meaning) and emit it as
# bench-scaling.json. The emitter derives scaling_efficiency from the t1
# siblings; benchdiff gates >10% drops on matched keys when trajectories
# carry the column (see DESIGN.md §14.5). Wall times from a 1-CPU CI
# runner land near 1/threads — the deterministic columns (fingerprints,
# barriers/round) are the load-bearing part of the artifact.
bench-scaling:
	$(GO) run ./cmd/repro -bench-json bench-scaling.json -bench-sweep 1,2,4,8 -threads 1 -scale small
