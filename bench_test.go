// Benchmarks regenerating the paper's evaluation (§5), one family per
// figure/table, plus ablations for the §3.3 optimizations. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports, beyond ns/op, the figure's own metrics via
// ReportMetric: committed tasks/us and abort ratios (Figure 4), atomic
// updates/us (Figure 5), and so on. Inputs default to the small scale so
// the full suite completes quickly; set -benchscale=default or full for
// measurement runs.
package galois_test

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"galois"
	"galois/internal/apps/blackscholes"
	"galois/internal/apps/bodytrack"
	"galois/internal/apps/cavity"
	"galois/internal/apps/freqmine"
	"galois/internal/apps/mm"
	"galois/internal/apps/msf"
	"galois/internal/apps/sssp"
	"galois/internal/cachesim"
	"galois/internal/coredet"
	"galois/internal/graph"
	"galois/internal/harness"
	"galois/internal/obs"
	"galois/internal/para"
)

var (
	benchScale = flag.String("benchscale", "small", "benchmark input scale: small|default|full")
	benchJSON  = flag.String("benchjson", "", "write a benchmark-trajectory JSON (galois-bench/v2, with alloc columns) of every measured run to this file")
)

// benchDoc accumulates one trajectory entry per benchRun measurement when
// -benchjson is set; TestMain flushes it after the run.
var (
	benchDocMu sync.Mutex
	benchDoc   = obs.NewBench()
)

// recordBench appends the measured cell to the trajectory document, with
// allocation columns from one extra (untimed) run in the same mode.
func recordBench(in *harness.Inputs, app, variant string, threads int, r harness.Run) {
	if *benchJSON == "" {
		return
	}
	e := harness.BenchEntry(r, *benchScale)
	if in.Engine != nil {
		e.Mode = "engine"
	}
	e.AllocsPerOp, e.BytesPerOp = harness.MeasureAllocs(1, func() {
		in.RunOnce(app, variant, threads, nil)
	})
	benchDocMu.Lock()
	benchDoc.Add(e)
	benchDocMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSON != "" && len(benchDoc.Entries) > 0 {
		if err := benchDoc.WriteFile(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

var (
	inputsOnce sync.Once
	inputsVal  *harness.Inputs
)

func inputs(b *testing.B) *harness.Inputs {
	inputsOnce.Do(func() {
		sc, err := harness.ScaleByName(*benchScale)
		if err != nil {
			panic(err)
		}
		sc.Reps = 1
		inputsVal = harness.MakeInputs(sc)
	})
	return inputsVal
}

// benchRun runs one app/variant/threads cell b.N times on a reused engine
// (measured iterations share run state, the steady state a serving workload
// sees), reporting the paper's per-run metrics plus -benchmem allocations.
func benchRun(b *testing.B, app, variant string, threads int) {
	in := inputs(b)
	if variant != "seq" && variant != "pbbs" {
		eng := galois.NewEngine(galois.WithThreads(threads))
		defer eng.Close()
		in.Engine = eng
		defer func() { in.Engine = nil }()
		in.RunOnce(app, variant, threads, nil) // warm the engine, untimed
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last harness.Run
	for i := 0; i < b.N; i++ {
		last = in.RunOnce(app, variant, threads, nil)
	}
	b.StopTimer()
	recordBench(in, app, variant, threads, last)
	b.ReportMetric(last.Stats.CommitsPerMicro(), "tasks/us")
	b.ReportMetric(last.Stats.AbortRatio(), "abort-ratio")
	b.ReportMetric(last.Stats.AtomicsPerMicro(), "atomics/us")
	b.ReportMetric(float64(last.Stats.Rounds), "rounds")
}

// BenchmarkFig4And5Rates covers Figures 4 and 5: task and atomic-update
// rates per app and variant at one thread and at GOMAXPROCS.
func BenchmarkFig4And5Rates(b *testing.B) {
	maxT := para.DefaultThreads()
	for _, app := range harness.Apps {
		for _, variant := range []string{"g-n", "g-d", "pbbs"} {
			if !harness.HasVariant(app, variant) {
				continue
			}
			for _, threads := range []int{1, maxT} {
				b.Run(fmt.Sprintf("%s/%s/t%d", app, variant, threads), func(b *testing.B) {
					benchRun(b, app, variant, threads)
				})
			}
		}
	}
}

// BenchmarkFig6CoreDet covers Figure 6: each pthread-style program with
// and without CoreDet-style deterministic thread scheduling.
func BenchmarkFig6CoreDet(b *testing.B) {
	maxT := para.DefaultThreads()
	in := inputs(b)
	sc := harness.SmallScale()
	apps := map[string]func(threads int, rt *coredet.Runtime){
		"blackscholes": func(t int, rt *coredet.Runtime) {
			blackscholes.Run(blackscholes.GenPortfolio(sc.BSOptions, 1), sc.BSRounds, t, rt)
		},
		"bodytrack": func(t int, rt *coredet.Runtime) {
			bodytrack.Run(bodytrack.Config{Particles: sc.BTParticles, Frames: sc.BTFrames}, t, rt, 1)
		},
		"freqmine": func(t int, rt *coredet.Runtime) {
			cfg := freqmine.DefaultConfig()
			cfg.Transactions = sc.FMTxns
			freqmine.Run(cfg, freqmine.GenTransactions(cfg, 1), t, rt)
		},
		"dmr-pt": func(t int, rt *coredet.Runtime) {
			cavity.Run(cavity.DMRProfile(sc.CavityTasks), t, rt, 1)
		},
		"dt-pt": func(t int, rt *coredet.Runtime) {
			cavity.Run(cavity.DTProfile(sc.CavityTasks), t, rt, 1)
		},
		"bfs-pt": func(t int, rt *coredet.Runtime) {
			harness.PThreadBFS(in, t, rt)
		},
		"mis-pt": func(t int, rt *coredet.Runtime) {
			harness.PThreadMIS(in, t, rt)
		},
	}
	for _, name := range []string{"blackscholes", "bodytrack", "freqmine", "bfs-pt", "mis-pt", "dmr-pt", "dt-pt"} {
		run := apps[name]
		for _, mode := range []string{"plain", "coredet"} {
			b.Run(fmt.Sprintf("%s/%s/t%d", name, mode, maxT), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rt := coredet.New(mode == "coredet", 0)
					run(maxT, rt)
					b.ReportMetric(float64(rt.SyncOps()), "syncops")
				}
			})
		}
	}
}

// BenchmarkFig7Speedup covers Figures 7-9: every variant of every app at
// 1 thread and GOMAXPROCS (speedups are ratios of these timings).
func BenchmarkFig7Speedup(b *testing.B) {
	maxT := para.DefaultThreads()
	for _, app := range harness.Apps {
		for _, variant := range harness.Variants {
			if !harness.HasVariant(app, variant) {
				continue
			}
			threadSet := []int{1, maxT}
			if variant == "seq" {
				threadSet = []int{1}
			}
			for _, threads := range threadSet {
				b.Run(fmt.Sprintf("%s/%s/t%d", app, variant, threads), func(b *testing.B) {
					benchRun(b, app, variant, threads)
				})
			}
		}
	}
}

// BenchmarkFig10Continuation is the §3.3 continuation ablation: g-d versus
// g-dnc (baseline scheduler, commit-phase re-execution).
func BenchmarkFig10Continuation(b *testing.B) {
	maxT := para.DefaultThreads()
	for _, app := range harness.Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			b.Run(fmt.Sprintf("%s/%s/t%d", app, variant, maxT), func(b *testing.B) {
				benchRun(b, app, variant, maxT)
			})
		}
	}
}

// BenchmarkFig11Locality runs the profiled variants through the
// reuse-distance model and reports modeled DRAM requests per million
// accesses (Figure 11's quantity, normalized).
func BenchmarkFig11Locality(b *testing.B) {
	maxT := para.DefaultThreads()
	in := inputs(b)
	for _, app := range harness.Apps {
		for _, variant := range []string{"g-n", "g-d"} {
			b.Run(fmt.Sprintf("%s/%s", app, variant), func(b *testing.B) {
				var rep cachesim.Report
				for i := 0; i < b.N; i++ {
					tr := cachesim.NewTracer(maxT)
					in.RunOnce(app, variant, maxT, tr)
					rep = tr.Analyze(0)
				}
				if rep.Accesses > 0 {
					b.ReportMetric(1e6*float64(rep.DRAMRequests())/float64(rep.Accesses), "dram/Maccess")
				}
			})
		}
	}
}

// BenchmarkAblationWindow sweeps the deterministic window policy constants
// (performance-only knobs; determinism tests prove output is unaffected by
// thread count for any fixed policy).
func BenchmarkAblationWindow(b *testing.B) {
	maxT := para.DefaultThreads()
	in := inputs(b)
	for _, target := range []float64{0.5, 0.8, 0.95, 0.99} {
		b.Run(fmt.Sprintf("dmr/target=%v", target), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in.RunDetTuned(b, "dmr", maxT, 0, target, false)
			}
		})
	}
	for _, init := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("dmr/init=%d", init), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in.RunDetTuned(b, "dmr", maxT, init, 0, false)
			}
		})
	}
}

// BenchmarkAblationInterleave toggles the §3.3 locality-aware round
// placement.
func BenchmarkAblationInterleave(b *testing.B) {
	maxT := para.DefaultThreads()
	in := inputs(b)
	for _, app := range []string{"dmr", "dt"} {
		for _, interleave := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/interleave=%v", app, interleave), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					in.RunDetTuned(b, app, maxT, 0, 0, !interleave)
				}
			})
		}
	}
}

// BenchmarkExtensions covers the library extensions beyond the paper's
// benchmark set: maximal matching, Boruvka spanning forest, and SSSP (the
// OBIM priority worklist's showcase), each under both schedulers.
func BenchmarkExtensions(b *testing.B) {
	maxT := para.DefaultThreads()
	g := graph.Symmetrize(graph.RandomKOut(10_000, 5, 42))
	wg := graph.RandomWeighted(10_000, 4, 100, 42)
	edges := msf.RandomWeights(g, 1000, 7)

	b.Run(fmt.Sprintf("mm/g-n/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mm.Galois(g, galois.WithThreads(maxT))
		}
	})
	b.Run(fmt.Sprintf("mm/g-d/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mm.Galois(g, galois.WithThreads(maxT), galois.WithSched(galois.Deterministic))
		}
	})
	b.Run(fmt.Sprintf("mm/pbbs/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mm.PBBS(g, maxT)
		}
	})
	b.Run(fmt.Sprintf("msf/g-n/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msf.Galois(g.N(), edges, galois.WithThreads(maxT))
		}
	})
	b.Run(fmt.Sprintf("msf/g-d/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msf.Galois(g.N(), edges, galois.WithThreads(maxT), galois.WithSched(galois.Deterministic))
		}
	})
	b.Run(fmt.Sprintf("msf/pbbs/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msf.PBBS(g.N(), edges, maxT)
		}
	})
	b.Run(fmt.Sprintf("sssp/obim/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sssp.Galois(wg, 0, sssp.DefaultOptions(100), galois.WithThreads(maxT))
		}
	})
	b.Run(fmt.Sprintf("sssp/fifo/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sssp.Galois(wg, 0, sssp.Options{}, galois.WithThreads(maxT))
		}
	})
	b.Run(fmt.Sprintf("sssp/g-d/t%d", maxT), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sssp.Galois(wg, 0, sssp.Options{}, galois.WithThreads(maxT), galois.WithSched(galois.Deterministic))
		}
	})
}
