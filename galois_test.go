package galois_test

import (
	"fmt"
	"testing"

	"galois"
)

// counter is a shared abstract location.
type counter struct {
	galois.Lockable
	n int64
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for _, sched := range []galois.Sched{galois.NonDeterministic, galois.Deterministic} {
		var c counter
		items := make([]int, 1000)
		st := galois.ForEach(items, func(ctx *galois.Ctx[int], _ int) {
			ctx.Acquire(&c.Lockable)
			ctx.OnCommit(func(*galois.Ctx[int]) { c.n++ })
		}, galois.WithSched(sched), galois.WithThreads(4))
		if c.n != 1000 {
			t.Fatalf("%v: n = %d", sched, c.n)
		}
		if st.Commits != 1000 {
			t.Fatalf("%v: commits = %d", sched, st.Commits)
		}
	}
}

func TestOptionPlumbing(t *testing.T) {
	var c counter
	tr := galois.NewTracer(2)
	sink := galois.NewTrace(2)
	met := galois.NewMetrics(2)
	st := galois.ForEach([]int{1, 2, 3}, func(ctx *galois.Ctx[int], _ int) {
		ctx.Acquire(&c.Lockable)
	},
		galois.WithSched(galois.Deterministic),
		galois.WithThreads(2),
		galois.WithoutContinuation(),
		galois.WithLocalityInterleave(false),
		galois.WithWindow(8, 4, 0.9),
		galois.WithRoundSamples(),
		galois.WithTrace(sink),
		galois.WithMetrics(met),
		galois.WithProfile(tr),
		galois.WithFIFO(),
	)
	if st.Commits != 3 {
		t.Fatalf("commits = %d", st.Commits)
	}
	if len(st.Trace) == 0 {
		t.Fatal("WithRoundSamples produced no samples")
	}
	if sink.Len() == 0 {
		t.Fatal("WithTrace buffered no events")
	}
	if len(sink.Rounds()) == 0 {
		t.Fatal("trace has no round events")
	}
	if met.Counter("run.commits").Value() != 3 {
		t.Fatalf("metrics run.commits = %d", met.Counter("run.commits").Value())
	}
	if tr.Len() == 0 {
		t.Fatal("WithProfile recorded no accesses")
	}
}

func TestTraceCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 1-thread trace on a 2-thread run")
		}
	}()
	galois.ForEach([]int{1}, func(ctx *galois.Ctx[int], _ int) {},
		galois.WithThreads(2), galois.WithTrace(galois.NewTrace(1)))
}

func TestSchedulerStringNames(t *testing.T) {
	if galois.NonDeterministic.String() != "nondet" || galois.Deterministic.String() != "det" {
		t.Fatal("scheduler names changed")
	}
}

// ExampleForEach demonstrates the programming model: cautious tasks over
// shared accounts, with determinism as a runtime switch.
func ExampleForEach() {
	type account struct {
		galois.Lockable
		balance int
	}
	accounts := []*account{{balance: 10}, {balance: 10}, {balance: 10}}

	// Each task moves one unit from account i to account (i+1)%3;
	// tasks conflict pairwise on shared accounts.
	moves := []int{0, 1, 2, 0, 1, 2}
	galois.ForEach(moves, func(ctx *galois.Ctx[int], i int) {
		from := accounts[i]
		to := accounts[(i+1)%len(accounts)]
		ctx.Acquire(&from.Lockable)
		ctx.Acquire(&to.Lockable)
		ok := from.balance > 0
		ctx.OnCommit(func(*galois.Ctx[int]) {
			if ok {
				from.balance--
				to.balance++
			}
		})
	}, galois.WithSched(galois.Deterministic), galois.WithThreads(2))

	fmt.Println(accounts[0].balance + accounts[1].balance + accounts[2].balance)
	// Output: 30
}

// ExampleCtx_Push demonstrates dynamic task creation: committed tasks add
// new tasks to the pool, deterministically ordered under DIG scheduling.
func ExampleCtx_Push() {
	var c counter
	// Each task increments the counter and spawns one child until depth
	// is exhausted: 4 roots * 3 levels = 12 commits.
	type job struct{ depth int }
	roots := []job{{3}, {3}, {3}, {3}}
	galois.ForEach(roots, func(ctx *galois.Ctx[job], j job) {
		ctx.Acquire(&c.Lockable)
		ctx.OnCommit(func(cc *galois.Ctx[job]) {
			c.n++
			if j.depth > 1 {
				cc.Push(job{depth: j.depth - 1})
			}
		})
	}, galois.WithSched(galois.Deterministic))
	fmt.Println(c.n)
	// Output: 12
}

func TestWithPriorityOBIM(t *testing.T) {
	// SSSP-flavored workload: relax cells in priority order; correctness
	// must hold regardless, but the option must round-trip the priority
	// function and deliver every task.
	var c counter
	items := make([]int, 2000)
	for i := range items {
		items[i] = i
	}
	st := galois.ForEach(items, func(ctx *galois.Ctx[int], i int) {
		ctx.Acquire(&c.Lockable)
		ctx.OnCommit(func(*galois.Ctx[int]) { c.n++ })
	},
		galois.WithThreads(4),
		galois.WithPriority(func(i int) int { return i / 100 }, 32),
	)
	if st.Commits != 2000 || c.n != 2000 {
		t.Fatalf("commits=%d n=%d", st.Commits, c.n)
	}
}

func TestWithPriorityTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on priority type mismatch")
		}
	}()
	galois.ForEach([]int{1}, func(ctx *galois.Ctx[int], i int) {},
		galois.WithPriority(func(s string) int { return 0 }, 8))
}

func TestPriorityOrderGuidesExecution(t *testing.T) {
	// Single thread, no conflicts: commits should trend with priority
	// (bucket order), observable through a shared append log.
	var c counter
	var order []int
	items := []int{5, 3, 9, 1, 7, 0, 8, 2, 6, 4}
	galois.ForEach(items, func(ctx *galois.Ctx[int], i int) {
		ctx.Acquire(&c.Lockable)
		ctx.OnCommit(func(*galois.Ctx[int]) { order = append(order, i) })
	},
		galois.WithThreads(1),
		galois.WithPriority(func(i int) int { return i }, 16),
	)
	// With one thread and all items pushed before execution... they are
	// seeded round-robin before workers start, so single-thread pops see
	// full buckets: order must be nondecreasing.
	for k := 1; k < len(order); k++ {
		if order[k] < order[k-1] {
			t.Fatalf("priority inversion in %v", order)
		}
	}
}

func TestCtxIntrospection(t *testing.T) {
	var c counter
	sawTID := false
	galois.ForEach([]int{1, 2, 3}, func(ctx *galois.Ctx[int], i int) {
		if ctx.TID() < 0 || ctx.TID() >= ctx.Threads() {
			t.Errorf("TID %d out of range [0,%d)", ctx.TID(), ctx.Threads())
		}
		sawTID = true
		if ctx.Deterministic() {
			t.Error("nondet loop reported deterministic")
		}
		ctx.Acquire(&c.Lockable)
		ctx.CountAtomic(3)
	}, galois.WithThreads(1))
	if !sawTID {
		t.Fatal("body never ran")
	}
	galois.ForEach([]int{1}, func(ctx *galois.Ctx[int], i int) {
		if !ctx.Deterministic() {
			t.Error("det loop reported non-deterministic")
		}
	}, galois.WithSched(galois.Deterministic), galois.WithThreads(1))
}

func TestCountAtomicFlowsIntoStats(t *testing.T) {
	var c counter
	st := galois.ForEach([]int{1, 2}, func(ctx *galois.Ctx[int], i int) {
		ctx.Acquire(&c.Lockable)
		ctx.CountAtomic(100)
	}, galois.WithThreads(1))
	if st.AtomicOps < 200 {
		t.Fatalf("atomic ops %d < 200", st.AtomicOps)
	}
}

func TestEngineFacade(t *testing.T) {
	// NewEngine honors WithThreads; ForEachOn and WithEngine are two routes
	// to the same reused state, and both leave results identical to the
	// one-shot ForEach.
	eng := galois.NewEngine(galois.WithThreads(4))
	defer eng.Close()
	if eng.Threads() != 4 {
		t.Fatalf("engine threads = %d", eng.Threads())
	}
	items := make([]int, 500)
	body := func(ctx *galois.Ctx[int], _ int) {}
	for rep := 0; rep < 2; rep++ {
		st := galois.ForEachOn(eng, items, body, galois.WithSched(galois.Deterministic))
		if st.Commits != uint64(len(items)) {
			t.Fatalf("ForEachOn rep %d: commits = %d", rep, st.Commits)
		}
		st = galois.ForEach(items, body,
			galois.WithSched(galois.Deterministic), galois.WithEngine(eng))
		if st.Commits != uint64(len(items)) {
			t.Fatalf("WithEngine rep %d: commits = %d", rep, st.Commits)
		}
	}
}
