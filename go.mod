module galois

go 1.24
