// Max flow with preflow-push: compute a maximum flow on a random capacity
// network with the Galois preflow-push implementation (global relabeling
// heuristic included), then validate the result against an independent
// Dinic implementation.
//
// Run:
//
//	go run ./examples/maxflow [-n 65536] [-sched nondet]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"galois"
	"galois/internal/apps/pfp"
)

func main() {
	n := flag.Int("n", 1<<16, "number of nodes")
	sched := flag.String("sched", "nondet", "scheduler: det|nondet")
	flag.Parse()

	fmt.Printf("generating random 4-out network with %d nodes...\n", *n)
	nw := pfp.RandomNetwork(*n, 4, 100, 7)

	opts := []galois.Option{}
	if *sched == "det" {
		opts = append(opts, galois.WithSched(galois.Deterministic))
	}
	start := time.Now()
	value, st := pfp.Galois(nw, opts...)
	fmt.Printf("max flow %d in %s (%s scheduler)\n", value, time.Since(start).Round(time.Millisecond), *sched)
	fmt.Printf("scheduler stats: %v\n", st)

	fmt.Print("checking preflow invariants... ")
	if err := nw.CheckPreflow(); err != nil {
		fmt.Println("FAILED")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ok")

	fmt.Print("cross-checking value against Dinic... ")
	fresh := pfp.RandomNetwork(*n, 4, 100, 7)
	want := pfp.Dinic(fresh)
	if want != value {
		fmt.Printf("MISMATCH: dinic=%d pfp=%d\n", want, value)
		os.Exit(1)
	}
	fmt.Println("ok")
}
