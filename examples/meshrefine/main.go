// Mesh refinement end-to-end: build a Delaunay mesh over random points,
// refine it to a 30-degree quality bound under the deterministic scheduler,
// and verify every invariant (conforming topology, Delaunay property, no
// bad triangles).
//
// This is the paper's flagship irregular application (dmr): tasks are bad
// triangles, neighborhoods are cavities discovered at run time, and
// committed tasks create new tasks.
//
// Run:
//
//	go run ./examples/meshrefine [-n 20000] [-sched det]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"galois"
	"galois/internal/apps/dmr"
	"galois/internal/mesh"
)

func main() {
	n := flag.Int("n", 20_000, "number of input points")
	sched := flag.String("sched", "det", "scheduler: det|nondet")
	flag.Parse()

	q := dmr.DefaultQuality()
	fmt.Printf("building Delaunay mesh over %d random points in the unit square...\n", *n)
	root := dmr.MakeInput(*n, 42)
	before := mesh.CountTriangles(root, false)
	fmt.Printf("\ninput quality: %v\n", mesh.Quality(root, false))

	opts := []galois.Option{}
	if *sched == "det" {
		opts = append(opts, galois.WithSched(galois.Deterministic))
	}
	start := time.Now()
	res := dmr.Galois(root, q, opts...)
	elapsed := time.Since(start)

	after := mesh.CountTriangles(res.Root, false)
	fmt.Printf("refined %d -> %d triangles in %s (%s scheduler)\n",
		before, after, elapsed.Round(time.Millisecond), *sched)
	fmt.Printf("scheduler stats: %v\n", res.Stats)
	fmt.Printf("\noutput quality: %v\n", mesh.Quality(res.Root, false))

	fmt.Print("verifying conforming topology, Delaunay property, quality bound... ")
	if err := res.Check(q); err != nil {
		fmt.Println("FAILED")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ok")
	fmt.Printf("mesh fingerprint %016x (run with different -sched/-threads to compare)\n",
		res.Fingerprint())
}
