// Portability demo: the paper's headline property, made visible.
//
// Maximal independent set has many valid answers, and which one a parallel
// run produces depends on the schedule. This example runs the same MIS
// program under both schedulers across thread counts and prints the output
// fingerprints:
//
//   - non-deterministic: fingerprints differ across runs/threads (any of
//     them is a valid MIS — speed is the point);
//   - deterministic (DIG): one fingerprint, for every thread count and
//     every repetition — on-demand, portable, and with no tuning knobs
//     that change the answer (the window adapts from commit ratios only).
//
// Run:
//
//	go run ./examples/portability
package main

import (
	"fmt"

	"galois"
	"galois/internal/apps/mis"
	"galois/internal/graph"
)

func main() {
	fmt.Println("generating random graph (100k nodes, 5-out, symmetrized)...")
	g := graph.Symmetrize(graph.RandomKOut(100_000, 5, 42))

	fmt.Println("\nnon-deterministic scheduler (any serialization is a valid MIS):")
	for _, threads := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			r := mis.Galois(g, galois.WithThreads(threads))
			if err := r.Check(g); err != nil {
				panic(err)
			}
			fmt.Printf("  threads=%d rep=%d  |MIS|=%-6d fingerprint=%016x\n",
				threads, rep, r.Size(), r.Fingerprint())
		}
	}

	fmt.Println("\ndeterministic scheduler (DIG): one answer, everywhere:")
	var ref uint64
	for _, threads := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			r := mis.Galois(g, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
			if err := r.Check(g); err != nil {
				panic(err)
			}
			fp := r.Fingerprint()
			marker := ""
			if ref == 0 {
				ref = fp
			} else if fp != ref {
				marker = "  <-- PORTABILITY VIOLATION"
			}
			fmt.Printf("  threads=%d rep=%d  |MIS|=%-6d fingerprint=%016x%s\n",
				threads, rep, r.Size(), fp, marker)
		}
	}
	fmt.Println("\nall deterministic fingerprints match: the schedule is a pure")
	fmt.Println("function of the input, independent of thread count and timing.")
}
