// Spanning forest: Boruvka contraction as a Galois program.
//
// This example goes beyond the paper's benchmark set to show the
// programming model on a "morph" algorithm whose data structure collapses
// as it runs: tasks are graph components; each finds its lightest outgoing
// edge (chasing forwarding pointers through contracted neighbors — the same
// pattern the Delaunay codes use for dead mesh elements) and merges with
// the neighbor at commit. Unique edge weights make the minimum spanning
// forest unique, so every scheduler must agree with Kruskal — which the
// example verifies.
//
// Run:
//
//	go run ./examples/spanningforest [-n 50000] [-sched det]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"galois"
	"galois/internal/apps/msf"
	"galois/internal/graph"
)

func main() {
	n := flag.Int("n", 50_000, "number of nodes (random 4-out graph)")
	sched := flag.String("sched", "det", "scheduler: det|nondet")
	flag.Parse()

	fmt.Printf("generating %d-node graph with unique random weights...\n", *n)
	g := graph.Symmetrize(graph.RandomKOut(*n, 4, 11))
	edges := msf.RandomWeights(g, 1000, 23)

	opts := []galois.Option{}
	if *sched == "det" {
		opts = append(opts, galois.WithSched(galois.Deterministic))
	}
	start := time.Now()
	r := msf.Galois(g.N(), edges, opts...)
	fmt.Printf("forest: %d edges, total weight %d, in %s (%s scheduler)\n",
		len(r.Chosen), r.TotalWeight, time.Since(start).Round(time.Millisecond), *sched)
	fmt.Printf("scheduler stats: %v\n", r.Stats)

	fmt.Print("verifying against Kruskal... ")
	want := msf.Seq(g.N(), edges)
	if want.TotalWeight != r.TotalWeight || want.Fingerprint() != r.Fingerprint() {
		fmt.Println("MISMATCH")
		fmt.Fprintf(os.Stderr, "kruskal weight %d vs %d\n", want.TotalWeight, r.TotalWeight)
		os.Exit(1)
	}
	fmt.Println("ok (identical edge set)")
}
