// Quickstart: a first Galois program.
//
// The task pool is a set of accounts; each task transfers money between two
// accounts. Transfers conflict when they share an account, so the loop is
// genuinely irregular: the runtime discovers conflicts at run time through
// the acquired neighborhoods.
//
// The same body runs under both schedulers — the paper's on-demand
// determinism. Because account balances are updated with a non-commutative
// operation (a fee is charged only when the payer can cover the amount),
// the final state depends on the transfer order: the non-deterministic
// scheduler may produce different totals run to run, while the
// deterministic scheduler always produces the same one.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"galois"
	"galois/internal/rng"
)

// Account is an abstract location (it embeds galois.Lockable) plus state.
type Account struct {
	galois.Lockable
	Balance int64
}

// Transfer moves Amount from From to To if covered, charging a fee.
type Transfer struct {
	From, To int
	Amount   int64
}

func run(accounts []*Account, transfers []Transfer, sched galois.Sched, threads int, eng *galois.Engine) (total int64, stats galois.Stats) {
	for _, a := range accounts {
		a.Balance = 1000
	}
	opts := []galois.Option{galois.WithSched(sched), galois.WithThreads(threads)}
	if eng != nil {
		// Reuse retained run state (workers, arenas, scratch) across calls.
		// Purely a memory optimization: results are engine-invariant.
		opts = append(opts, galois.WithEngine(eng))
	}
	stats = galois.ForEach(transfers, func(ctx *galois.Ctx[Transfer], t Transfer) {
		from, to := accounts[t.From], accounts[t.To]
		// Cautious protocol: acquire (and read) everything first...
		ctx.Acquire(&from.Lockable)
		ctx.Acquire(&to.Lockable)
		covered := from.Balance >= t.Amount
		// ...and defer all writes to the commit closure.
		ctx.OnCommit(func(*galois.Ctx[Transfer]) {
			if covered {
				from.Balance -= t.Amount + 1 // 1 unit fee
				to.Balance += t.Amount
			}
		})
	}, opts...)
	for _, a := range accounts {
		total += a.Balance
	}
	return total, stats
}

func main() {
	const nAccounts = 64
	const nTransfers = 50_000
	accounts := make([]*Account, nAccounts)
	for i := range accounts {
		accounts[i] = &Account{}
	}
	r := rng.New(7)
	transfers := make([]Transfer, nTransfers)
	for i := range transfers {
		from := r.Intn(nAccounts)
		to := (from + 1 + r.Intn(nAccounts-1)) % nAccounts
		transfers[i] = Transfer{From: from, To: to, Amount: int64(100 + r.Intn(900))}
	}

	fmt.Println("same program, two schedulers (total system balance after fees):")
	for _, threads := range []int{1, 4, 8} {
		total, st := run(accounts, transfers, galois.NonDeterministic, threads, nil)
		fmt.Printf("  nondet  threads=%d  total=%-8d  %v\n", threads, total, st)
	}
	for _, threads := range []int{1, 4, 8} {
		total, st := run(accounts, transfers, galois.Deterministic, threads, nil)
		fmt.Printf("  det     threads=%d  total=%-8d  %v\n", threads, total, st)
	}
	fmt.Println("\nthe deterministic totals are identical for every thread count;")
	fmt.Println("the non-deterministic ones need not be (and are usually faster).")

	// Repeated loops should reuse one engine: run state (worker
	// goroutines, task arenas, scratch) is retained across calls, so the
	// steady state allocates near zero — and the totals are identical to
	// the fresh runs above, because reuse never reaches committed output.
	eng := galois.NewEngine(galois.WithThreads(8))
	defer eng.Close()
	fmt.Println("\nreusing one engine across repeated deterministic runs:")
	for rep := 0; rep < 3; rep++ {
		total, _ := run(accounts, transfers, galois.Deterministic, 8, eng)
		fmt.Printf("  det     rep=%d      total=%-8d\n", rep, total)
	}
}
